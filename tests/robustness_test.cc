// Robustness and failure-injection tests: control-plane packet loss on the
// switching protocol, fuzzed queue/filter workloads, and end-to-end
// behaviour under degraded conditions.
#include <gtest/gtest.h>

#include <set>

#include "ap/cyclic_queue.h"
#include "mac/block_ack.h"
#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"
#include "util/rng.h"

namespace wgtt {
namespace {

// --- control-plane loss -------------------------------------------------------

// The switching protocol must survive lossy backhaul control delivery via
// its 30 ms retransmission (paper §3.1.2). We inject heavy random loss on
// the backhaul and require the system to keep delivering data and keep the
// serving AP moving with the client.
TEST(ControlPlaneLoss, SwitchingSurvivesBackhaulLoss) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 303;
  cfg.backhaul.loss_rate = 0.15;  // 15% of ALL backhaul messages vanish
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 15.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(9));
  // Retransmissions kicked in...
  EXPECT_GT(sys.controller().stats().stop_retransmissions, 0u);
  // ...and both the control plane and the data plane stayed alive.
  EXPECT_GT(sys.controller().stats().switches_completed, 5u);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(9)), 2.0);
  // The serving AP followed the car down the road.
  EXPECT_GE(sys.serving_ap(c), 4);
}

TEST(ControlPlaneLoss, NoSwitchLivelockUnderTotalAckLoss) {
  // Even with extreme control loss the controller never wedges: the
  // at-most-one-outstanding-switch rule plus the 30 ms timer keeps
  // retrying, and the data path keeps using the old AP meanwhile.
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 304;
  cfg.backhaul.loss_rate = 0.5;
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({22.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  sys.client(c).on_downlink = [](const net::Packet&) {};
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 8.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(6));
  // Initiated switches are eventually resolved or retried; the run ends
  // with a serving AP in place.
  EXPECT_NE(sys.serving_ap(c), -1);
}

// --- fuzzing ------------------------------------------------------------------

class CyclicQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CyclicQueueFuzz, MatchesReferenceMap) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  ap::CyclicQueue q;
  std::map<std::uint16_t, std::uint64_t> reference;  // index -> packet uid
  for (int step = 0; step < 5000; ++step) {
    const auto index = static_cast<std::uint16_t>(rng.uniform_int(4096));
    if (rng.chance(0.6)) {
      net::Packet p = net::make_packet();
      q.put(index, p);
      reference[index] = p.uid;
    } else {
      const auto got = q.take(index);
      auto it = reference.find(index);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->uid, it->second);
        reference.erase(it);
      }
    }
    if (step % 512 == 0) {
      EXPECT_EQ(q.occupancy(), reference.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicQueueFuzz, ::testing::Range(0, 8));

class SeqSpaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeqSpaceProperty, SubAddRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 17);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.uniform_int(4096));
    const auto d = static_cast<std::uint16_t>(rng.uniform_int(2048));
    const auto b = mac::seq_add(a, d);
    EXPECT_EQ(mac::seq_sub(b, a), d);
    if (d != 0) {
      EXPECT_TRUE(mac::seq_less(a, b));
      EXPECT_FALSE(mac::seq_less(b, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqSpaceProperty, ::testing::Range(0, 5));

// --- end-to-end degradation ordering -------------------------------------------

TEST(Degradation, ThroughputMonotoneInBackhaulQuality) {
  // More backhaul loss can only hurt. (Monotonicity with slack: separate
  // seeds would add noise, so the same world is reused and we allow a
  // small tolerance for stochastic MAC draws.)
  auto run_with_loss = [](double loss) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 305;
    cfg.backhaul.loss_rate = loss;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    transport::UdpSink sink;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      sink.on_packet(sys.now(), p);
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = net::ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 20.0, .client = net::ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    return sink.throughput().average_mbps(Time::sec(1), Time::sec(9));
  };
  const double clean = run_with_loss(0.0);
  const double lossy = run_with_loss(0.35);
  EXPECT_GT(clean, lossy * 1.1);
}

TEST(Degradation, MultiChannelScanningCostsAreBounded) {
  // The §7 multi-channel extension: reuse > 1 must still deliver a usable
  // stream (scan dead-air and retunes degrade, not destroy).
  auto run_reuse = [](int reuse) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 307;
    cfg.channel_reuse = reuse;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    transport::UdpSink sink;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      sink.on_packet(sys.now(), p);
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = net::ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 20.0, .client = net::ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    return sink.throughput().average_mbps(Time::sec(2), Time::sec(9));
  };
  const double single = run_reuse(1);
  const double multi = run_reuse(3);
  EXPECT_GT(single, 5.0);
  EXPECT_GT(multi, 2.0);  // degraded but functional
}

}  // namespace
}  // namespace wgtt
