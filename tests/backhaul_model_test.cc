// Backhaul cost model (DESIGN.md §10): proof that the single-copy
// refcounted fan-out is purely a memory/CPU optimisation, that the
// bandwidth/queue model and batching are invisible while off, and that a
// finite-rate batched drive still satisfies every switching-protocol
// invariant.
//
// The load-bearing test is the 20-seed sweep: a full seeded drive with the
// payload pool ON must produce a byte-identical `wgtt.metrics.v1` snapshot —
// every counter, gauge and histogram bucket — to the same drive with the
// pool OFF (per-AP payload copies, the seed engine's behaviour). Any extra
// RNG draw, reordered event or payload mutation anywhere between the
// controller's fan-out loop and the AP's cyclic queues shows up as a diff
// here.
#include <gtest/gtest.h>

#include <string>

#include "bench/harness.h"
#include "scenario/testbed.h"

namespace wgtt {
namespace {

using benchx::DriveConfig;
using benchx::DriveResult;

/// Asserts two runs of the same drive agree on everything observable
/// (same contract as the spatial-index equivalence sweep).
void expect_identical(const DriveResult& a, const DriveResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.invariant_violations, 0u) << what;
  EXPECT_EQ(b.invariant_violations, 0u) << what;
  EXPECT_EQ(a.switches, b.switches) << what;
  ASSERT_EQ(a.clients.size(), b.clients.size()) << what;
  for (std::size_t c = 0; c < a.clients.size(); ++c) {
    EXPECT_EQ(a.clients[c].mbps, b.clients[c].mbps) << what << " client " << c;
    EXPECT_EQ(a.clients[c].bytes, b.clients[c].bytes) << what << " client " << c;
    EXPECT_EQ(a.clients[c].accuracy, b.clients[c].accuracy)
        << what << " client " << c;
  }
  ASSERT_NE(a.metrics, nullptr) << what;
  ASSERT_NE(b.metrics, nullptr) << what;
  EXPECT_EQ(a.metrics->to_json(), b.metrics->to_json())
      << what << ": snapshots diverged";
}

TEST(BackhaulModelTest, TwentySeedPooledFanoutByteIdentical) {
  scenario::GeometryConfig geo;
  geo.num_aps = 4;  // short drive; 20 seeds x 2 runs must stay CI-friendly
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    DriveConfig base;
    base.mph = 25.0;
    base.udp_rate_mbps = 8.0;
    base.seed = seed;
    base.geometry = geo;
    base.collect_metrics = true;

    DriveConfig copied_cfg = base;
    copied_cfg.fanout_pool = false;  // the seed engine: N payload copies
    DriveConfig pooled_cfg = base;
    pooled_cfg.fanout_pool = true;  // one payload, N refcounted handles

    const DriveResult copied = benchx::run_drive(copied_cfg);
    const DriveResult pooled = benchx::run_drive(pooled_cfg);
    expect_identical(copied, pooled, "seed " + std::to_string(seed));
  }
}

TEST(BackhaulModelTest, ModelKnobsAtRestAreInvisible) {
  // Present-but-unused knobs must not perturb a run: a config that sets the
  // queue bound and batch shape but leaves the model off (link_rate unset,
  // batching false) is the same engine.
  DriveConfig base;
  base.mph = 25.0;
  base.udp_rate_mbps = 8.0;
  base.seed = 7;
  scenario::GeometryConfig geo;
  geo.num_aps = 4;
  base.geometry = geo;
  base.collect_metrics = true;

  DriveConfig knobs = base;
  knobs.backhaul_queue_bytes = 64 * 1024;          // read only when rate > 0
  knobs.backhaul_batch_window = Time::us(250);     // read only when batching

  const DriveResult plain = benchx::run_drive(base);
  const DriveResult at_rest = benchx::run_drive(knobs);
  expect_identical(plain, at_rest, "knobs at rest");
}

TEST(BackhaulModelTest, FiniteRateBatchedDriveRunsClean) {
  // The model fully on — finite per-link rate, bounded queues, batching —
  // with headroom above the offered load: the drive must stay clean (zero
  // invariant violations, positive goodput) and the new gauges must exist
  // and read sane values.
  DriveConfig cfg;
  cfg.mph = 25.0;
  cfg.udp_rate_mbps = 8.0;
  cfg.seed = 3;
  scenario::GeometryConfig geo;
  geo.num_aps = 4;
  cfg.geometry = geo;
  cfg.collect_metrics = true;
  cfg.backhaul_link_rate_mbps = 200.0;  // ample headroom
  cfg.backhaul_batching = true;

  const DriveResult r = benchx::run_drive(cfg);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.mean_mbps(), 0.0);
  ASSERT_NE(r.metrics, nullptr);
  const double util = r.metrics->gauge("backhaul.link_utilization").value();
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
  EXPECT_EQ(r.metrics->gauge("backhaul.queue_drops").value(), 0.0)
      << "ample headroom must not tail-drop";
}

TEST(BackhaulModelTest, SaturatedLinkShedsLoadNotInvariants) {
  // Offered load well past the link rate: goodput collapses toward the pipe
  // and the queue bound sheds the excess — but the switching protocol must
  // not care (data loss is the one thing it is built to survive).
  DriveConfig cfg;
  cfg.mph = 25.0;
  cfg.udp_rate_mbps = 12.0;
  cfg.seed = 5;
  scenario::GeometryConfig geo;
  geo.num_aps = 4;
  cfg.geometry = geo;
  cfg.collect_metrics = true;
  cfg.backhaul_link_rate_mbps = 4.0;  // well below the offered 12 Mb/s
  cfg.backhaul_queue_bytes = std::size_t{64} * 1024;
  cfg.backhaul_batching = true;

  const DriveResult r = benchx::run_drive(cfg);
  EXPECT_EQ(r.invariant_violations, 0u);
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_GT(r.metrics->gauge("backhaul.queue_drops").value(), 0.0)
      << "a 3x-oversubscribed link must tail-drop";
  EXPECT_LT(r.mean_mbps(), cfg.udp_rate_mbps * 0.8)
      << "goodput cannot approach an offered load 3x the pipe";
}

}  // namespace
}  // namespace wgtt
