// Tests for the controller: ESNR tracking, AP selection, the switching
// protocol driver (timeout retransmission, single-outstanding-switch), the
// downlink fan-out and the uplink de-duplication.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/controller.h"
#include "core/esnr_tracker.h"
#include "core/penalty_timers.h"
#include "core/spatial_index.h"
#include "core/streaming_median.h"
#include "net/backhaul.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wgtt::core {
namespace {

using net::ApId;
using net::BackhaulMessage;
using net::ClientId;
using net::NodeId;

constexpr ClientId kClient{0};

TEST(EsnrTrackerTest, MedianOverWindow) {
  EsnrTracker t(Time::ms(10));
  t.add(kClient, ApId{0}, Time::ms(0), 10.0);
  t.add(kClient, ApId{0}, Time::ms(2), 30.0);
  t.add(kClient, ApId{0}, Time::ms(4), 20.0);
  // Lower median of {10,20,30} = 20.
  EXPECT_DOUBLE_EQ(t.median(kClient, ApId{0}, Time::ms(5)).value(), 20.0);
  // After 12 ms, the t=0 sample ages out: lower median of {20,30} = 20.
  EXPECT_DOUBLE_EQ(t.median(kClient, ApId{0}, Time::ms(12)).value(), 20.0);
  // After everything ages out: no value.
  EXPECT_FALSE(t.median(kClient, ApId{0}, Time::ms(50)).has_value());
}

TEST(EsnrTrackerTest, BestApIsArgmaxOfMedians) {
  EsnrTracker t(Time::ms(10));
  t.add(kClient, ApId{0}, Time::ms(1), 15.0);
  t.add(kClient, ApId{1}, Time::ms(1), 25.0);
  t.add(kClient, ApId{2}, Time::ms(1), 20.0);
  EXPECT_EQ(t.best_ap(kClient, Time::ms(2)).value(), ApId{1});
}

TEST(EsnrTrackerTest, UnknownClientHasNoBest) {
  EsnrTracker t(Time::ms(10));
  EXPECT_FALSE(t.best_ap(ClientId{9}, Time::ms(1)).has_value());
}

TEST(EsnrTrackerTest, FreshApsHonoursHorizon) {
  EsnrTracker t(Time::ms(10));
  t.add(kClient, ApId{0}, Time::ms(0), 10.0);
  t.add(kClient, ApId{1}, Time::ms(90), 10.0);
  auto fresh = t.fresh_aps(kClient, Time::ms(100), Time::ms(50));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], ApId{1});
}

TEST(EsnrTrackerTest, LastHeard) {
  EsnrTracker t(Time::ms(10));
  EXPECT_FALSE(t.last_heard(kClient, ApId{0}).has_value());
  t.add(kClient, ApId{0}, Time::ms(7), 10.0);
  EXPECT_EQ(t.last_heard(kClient, ApId{0}).value(), Time::ms(7));
}

// --- Controller fixture ------------------------------------------------------

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : backhaul_(sched_, {}, Rng{3}) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      backhaul_.attach(NodeId::ap(ApId{i}),
                       [this, i](NodeId from, BackhaulMessage msg) {
                         ap_log_[i].emplace_back(from, std::move(msg));
                       });
    }
  }

  // Returned by reference: the Controller registers `this` with the
  // backhaul, so it must stay at a fixed address.
  Controller& make(Controller::Config cfg = {}) {
    controller_ = std::make_unique<Controller>(sched_, backhaul_, cfg);
    for (std::uint32_t i = 0; i < 3; ++i) controller_->add_ap(ApId{i});
    controller_->add_client(kClient);
    return *controller_;
  }

  net::CsiReport report(ApId ap, double snr_db) {
    net::CsiReport r;
    r.from_ap = ap;
    r.client = kClient;
    r.measurement.when = sched_.now();
    r.measurement.subcarrier_snr_db.fill(snr_db);
    r.measurement.rssi_dbm = -94.0 + snr_db;
    r.measurement.mean_snr_db = snr_db;
    return r;
  }

  void send_csi(ApId ap, double snr_db) {
    backhaul_.send(NodeId::ap(ap), NodeId::controller(), report(ap, snr_db));
  }

  /// Newest switch epoch observed in any stop/start the controller sent.
  /// A real AP echoes the epoch of the message it is answering; the fixture
  /// does the same by reading it off the log.
  std::uint32_t latest_epoch() const {
    std::uint32_t e = 0;
    for (const auto& [ap, log] : ap_log_) {
      for (const auto& [from, msg] : log) {
        if (const auto* stop = std::get_if<net::StopMsg>(&msg)) {
          e = std::max(e, stop->epoch);
        } else if (const auto* start = std::get_if<net::StartMsg>(&msg)) {
          e = std::max(e, start->epoch);
        }
      }
    }
    return e;
  }

  void ack_from(ApId ap) {
    backhaul_.send(NodeId::ap(ap), NodeId::controller(),
                   net::SwitchAck{kClient, ap, latest_epoch()});
  }

  /// Replaces AP i's logging handler with one that also answers heartbeat
  /// probes while *answering is true — a scriptable AP for liveness tests.
  /// `answering` must outlive the backhaul.
  void attach_heartbeat_responder(std::uint32_t i, const bool* answering) {
    backhaul_.attach(
        NodeId::ap(ApId{i}),
        [this, i, answering](NodeId from, BackhaulMessage msg) {
          if (const auto* hb = std::get_if<net::Heartbeat>(&msg)) {
            if (*answering) {
              backhaul_.send(NodeId::ap(ApId{i}), NodeId::controller(),
                             net::HeartbeatAck{ApId{i}, hb->seq});
            }
          }
          ap_log_[i].emplace_back(from, std::move(msg));
        });
  }

  template <typename T>
  int count_to_ap(std::uint32_t ap) const {
    int n = 0;
    auto it = ap_log_.find(ap);
    if (it == ap_log_.end()) return 0;
    for (const auto& [from, msg] : it->second) {
      if (std::holds_alternative<T>(msg)) ++n;
    }
    return n;
  }

  sim::Scheduler sched_;
  net::Backhaul backhaul_;
  std::unique_ptr<Controller> controller_;
  std::map<std::uint32_t, std::vector<std::pair<NodeId, BackhaulMessage>>> ap_log_;
};

TEST_F(ControllerTest, BootstrapsToFirstHeardAp) {
  Controller& c = make();
  send_csi(ApId{1}, 20.0);
  sched_.run_until(Time::ms(5));
  // Bootstrap sends a StartMsg directly to the best AP.
  EXPECT_EQ(count_to_ap<net::StartMsg>(1), 1);
  ack_from(ApId{1});
  sched_.run_until(Time::ms(10));
  EXPECT_EQ(c.serving_ap(kClient).value(), ApId{1});
}

TEST_F(ControllerTest, SwitchesToBetterApViaStop) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(50));  // hysteresis expires
  // AP1 is clearly better, and the serving AP has fresh in-window CSI.
  send_csi(ApId{0}, 15.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(55));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 1);
  // The stop names the new AP; completion comes from the new AP's ack.
  ack_from(ApId{1});
  sched_.run_until(Time::ms(60));
  EXPECT_EQ(c.serving_ap(kClient).value(), ApId{1});
  ASSERT_EQ(c.switch_log().size(), 2u);  // bootstrap + 1 switch
  EXPECT_EQ(c.switch_log()[1].from, ApId{0});
  EXPECT_EQ(c.switch_log()[1].to, ApId{1});
}

TEST_F(ControllerTest, HysteresisBlocksRapidSwitches) {
  Controller::Config cfg;
  cfg.switch_hysteresis = Time::ms(500);
  Controller& c = make(cfg);
  (void)c;
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(10));
  // Better AP appears immediately, but hysteresis must hold it back.
  send_csi(ApId{0}, 15.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(100));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 0);
}

TEST_F(ControllerTest, SilentServingJudgedByLastKnownValue) {
  Controller::Config cfg;
  cfg.serving_stale_timeout = Time::ms(100);
  Controller& c = make(cfg);
  (void)c;
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(60));
  // Serving AP briefly silent; a WEAKER challenger reports. The controller
  // must not trade a known-20 dB AP for a 15 dB one just because the good
  // one was quiet for a beat (first-report-wins guard).
  send_csi(ApId{1}, 15.0);
  sched_.run_until(Time::ms(70));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 0);
  // A clearly BETTER challenger during the same silence does win. (Sent
  // after the 10 ms window has flushed the 15 dB sample, so the challenger
  // median is unambiguously 30 dB.)
  sched_.run_until(Time::ms(85));
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(95));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 1);
}

TEST_F(ControllerTest, StaleServingAbandonedUnconditionally) {
  Controller::Config cfg;
  cfg.serving_stale_timeout = Time::ms(100);
  Controller& c = make(cfg);
  (void)c;
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  // Serving AP silent far beyond the stale timeout: even a weaker
  // challenger takes over (the serving AP is presumed out of range).
  sched_.run_until(Time::ms(250));
  send_csi(ApId{1}, 12.0);
  sched_.run_until(Time::ms(260));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 1);
}

TEST_F(ControllerTest, StopRetransmittedAfterAckTimeout) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(50));
  send_csi(ApId{0}, 10.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(55));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 1);
  // No ack arrives: 30 ms later the stop is retransmitted (paper §3.1.2).
  sched_.run_until(Time::ms(90));
  EXPECT_GE(count_to_ap<net::StopMsg>(0), 2);
  EXPECT_GE(c.stats().stop_retransmissions, 1u);
  // Ack finally arrives; retransmissions cease.
  ack_from(ApId{1});
  sched_.run_until(Time::ms(95));
  const int total = count_to_ap<net::StopMsg>(0);
  sched_.run_until(Time::ms(400));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), total);
}

TEST_F(ControllerTest, SingleOutstandingSwitch) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(50));
  send_csi(ApId{0}, 10.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(52));
  // While the switch to AP1 is unacked, an even better AP2 appears: the
  // controller must NOT issue a second switch (§3.1.2 footnote 2).
  send_csi(ApId{0}, 10.0);
  send_csi(ApId{2}, 40.0);
  sched_.run_until(Time::ms(60));
  EXPECT_EQ(count_to_ap<net::StopMsg>(0), 1);
  EXPECT_EQ(c.stats().switches_initiated, 2u);  // bootstrap + one switch
}

TEST_F(ControllerTest, DownlinkFanoutToFreshAps) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  send_csi(ApId{1}, 22.0);
  sched_.run_until(Time::ms(5));
  net::Packet p = net::make_packet();
  p.client = kClient;
  p.payload_bytes = 1000;
  c.send_downlink(p);
  sched_.run_until(Time::ms(10));
  EXPECT_EQ(count_to_ap<net::DownlinkData>(0), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(1), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(2), 0);  // AP2 never heard the client
}

TEST_F(ControllerTest, DownlinkFallsBackToAllAps) {
  Controller& c = make();
  net::Packet p = net::make_packet();
  p.client = kClient;
  c.send_downlink(p);  // no CSI at all yet
  sched_.run_until(Time::ms(5));
  EXPECT_EQ(count_to_ap<net::DownlinkData>(0), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(1), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(2), 1);
}

TEST_F(ControllerTest, IndexNumbersIncrementPerClientModulo4096) {
  Controller& c = make();
  std::vector<std::uint16_t> indices;
  backhaul_.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<net::DownlinkData>(&msg)) {
      indices.push_back(d->index);
    }
  });
  for (int i = 0; i < 3; ++i) {
    net::Packet p = net::make_packet();
    p.client = kClient;
    c.send_downlink(p);
  }
  sched_.run_until(Time::ms(5));
  ASSERT_EQ(indices.size(), 3u);
  EXPECT_EQ(indices[0], 0);
  EXPECT_EQ(indices[1], 1);
  EXPECT_EQ(indices[2], 2);
}

TEST_F(ControllerTest, UplinkDeduplication) {
  Controller& c = make();
  int delivered = 0;
  c.on_uplink = [&](const net::Packet&) { ++delivered; };
  net::Packet p = net::make_packet();
  p.client = kClient;
  p.ip_id = 42;
  // Three APs forward the same uplink packet (same client, same IP-ID).
  for (std::uint32_t i = 0; i < 3; ++i) {
    backhaul_.send(NodeId::ap(ApId{i}), NodeId::controller(),
                   net::UplinkData{ApId{i}, p});
  }
  sched_.run_until(Time::ms(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(c.stats().uplink_duplicates_dropped, 2u);
  // A different IP-ID passes.
  p.ip_id = 43;
  backhaul_.send(NodeId::ap(ApId{0}), NodeId::controller(),
                 net::UplinkData{ApId{0}, p});
  sched_.run_until(Time::ms(10));
  EXPECT_EQ(delivered, 2);
}

TEST_F(ControllerTest, DedupSetIsBounded) {
  Controller::Config cfg;
  cfg.dedup_capacity = 8;
  Controller& c = make(cfg);
  int delivered = 0;
  c.on_uplink = [&](const net::Packet&) { ++delivered; };
  // Push 20 distinct keys through a capacity-8 set; all pass.
  for (std::uint16_t i = 0; i < 20; ++i) {
    net::Packet p = net::make_packet();
    p.client = kClient;
    p.ip_id = i;
    backhaul_.send(NodeId::ap(ApId{0}), NodeId::controller(),
                   net::UplinkData{ApId{0}, p});
  }
  sched_.run_until(Time::ms(5));
  EXPECT_EQ(delivered, 20);
  // An early key has been evicted: its duplicate now passes (bounded memory
  // trades exactness at horizon edges).
  net::Packet p = net::make_packet();
  p.client = kClient;
  p.ip_id = 0;
  backhaul_.send(NodeId::ap(ApId{0}), NodeId::controller(),
                 net::UplinkData{ApId{0}, p});
  sched_.run_until(Time::ms(10));
  EXPECT_EQ(delivered, 21);
}

TEST_F(ControllerTest, AckWithStaleEpochIgnored) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});  // bootstrap complete: epoch 1
  sched_.run_until(Time::ms(50));
  send_csi(ApId{0}, 10.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(55));  // switch to AP1 pending: epoch 2
  ASSERT_EQ(count_to_ap<net::StopMsg>(0), 1);
  // A duplicate of the bootstrap's ack (epoch 1) resurfaces from a
  // retransmit chain. Pre-fix the controller matched on from_ap alone and
  // an ack from the right AP with the wrong epoch completed the switch.
  backhaul_.send(NodeId::ap(ApId{1}), NodeId::controller(),
                 net::SwitchAck{kClient, ApId{1}, 1});
  sched_.run_until(Time::ms(60));
  EXPECT_EQ(c.serving_ap(kClient).value(), ApId{0});  // still pending
  EXPECT_GE(c.stats().stale_acks_ignored, 1u);
  EXPECT_EQ(c.stats().switches_completed, 1u);
  // The ack with the correct epoch completes it.
  ack_from(ApId{1});
  sched_.run_until(Time::ms(65));
  EXPECT_EQ(c.serving_ap(kClient).value(), ApId{1});
  EXPECT_EQ(c.stats().switches_completed, 2u);
}

TEST_F(ControllerTest, AckFromWrongApIgnored) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(50));
  send_csi(ApId{0}, 10.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(55));
  // Right epoch, wrong AP: must not complete the switch to AP1.
  backhaul_.send(NodeId::ap(ApId{2}), NodeId::controller(),
                 net::SwitchAck{kClient, ApId{2}, latest_epoch()});
  sched_.run_until(Time::ms(60));
  EXPECT_EQ(c.serving_ap(kClient).value(), ApId{0});
  EXPECT_GE(c.stats().stale_acks_ignored, 1u);
}

TEST_F(ControllerTest, BootstrapRetransmitKeepsOriginalIndex) {
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  ASSERT_EQ(count_to_ap<net::StartMsg>(0), 1);
  // The bootstrap start is lost (no ack). Meanwhile downlink traffic keeps
  // advancing next_index. Pre-fix, the 30 ms retransmit resent the LIVE
  // next_index, silently skipping everything fanned out in between.
  for (int i = 0; i < 7; ++i) {
    net::Packet p = net::make_packet();
    p.client = kClient;
    c.send_downlink(p);
  }
  sched_.run_until(Time::ms(40));
  ASSERT_GE(count_to_ap<net::StartMsg>(0), 2);
  std::vector<std::uint16_t> start_indices;
  for (const auto& [from, msg] : ap_log_.at(0)) {
    if (const auto* s = std::get_if<net::StartMsg>(&msg)) {
      start_indices.push_back(s->first_unsent_index);
    }
  }
  ASSERT_GE(start_indices.size(), 2u);
  for (std::uint16_t idx : start_indices) {
    EXPECT_EQ(idx, start_indices.front());
  }
  // And all retransmits carry the same epoch: one bootstrap, one epoch.
  std::vector<std::uint32_t> epochs;
  for (const auto& [from, msg] : ap_log_.at(0)) {
    if (const auto* s = std::get_if<net::StartMsg>(&msg)) epochs.push_back(s->epoch);
  }
  for (std::uint32_t e : epochs) EXPECT_EQ(e, epochs.front());
}

TEST_F(ControllerTest, EpochIncreasesAcrossSwitches) {
  Controller& c = make();
  (void)c;
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  const std::uint32_t bootstrap_epoch = latest_epoch();
  EXPECT_GE(bootstrap_epoch, 1u);
  ack_from(ApId{0});
  sched_.run_until(Time::ms(50));
  send_csi(ApId{0}, 10.0);
  send_csi(ApId{1}, 30.0);
  sched_.run_until(Time::ms(55));
  EXPECT_GT(latest_epoch(), bootstrap_epoch);
}

TEST_F(ControllerTest, IndexNumbersWrapAt4096) {
  // m = 12 bits: the per-client index must wrap cleanly (the cyclic queues
  // and the shared 802.11 sequence space both rely on modular continuity).
  Controller& c = make();
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(2));
  std::vector<std::uint16_t> indices;
  backhaul_.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<net::DownlinkData>(&msg)) {
      indices.push_back(d->index);
    }
  });
  for (int i = 0; i < 5000; ++i) {
    net::Packet p = net::make_packet();
    p.client = kClient;
    c.send_downlink(p);
  }
  sched_.run_until(Time::sec(2));
  ASSERT_EQ(indices.size(), 5000u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], static_cast<std::uint16_t>(i & 0x0fff));
  }
}

// --- AP liveness state machine (DESIGN.md §7) -------------------------------

TEST_F(ControllerTest, LivenessStateMachineWithExponentialReadmission) {
  Controller::Config cfg;
  cfg.liveness_enabled = true;
  cfg.heartbeat_interval = Time::ms(10);
  cfg.heartbeat_miss_threshold = 2;
  cfg.readmission_backoff = Time::ms(40);
  cfg.readmission_backoff_max = Time::ms(400);
  Controller& c = make(cfg);
  bool answers[3] = {true, true, true};
  for (std::uint32_t i = 0; i < 3; ++i) attach_heartbeat_responder(i, &answers[i]);

  // Ticks land at 10, 20, 30, ... ms. A probe sent at tick N is judged at
  // tick N+1, so after the silence begins at 15 ms the first miss accrues
  // at tick 30 (probe@20 unanswered) and the second at tick 40.
  sched_.run_until(Time::ms(15));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kAlive);
  answers[2] = false;  // AP2 goes silent before its first answered probe ages
  sched_.run_until(Time::ms(35));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kSuspect);
  EXPECT_EQ(c.ap_health(ApId{0}).state, Controller::ApLiveness::kAlive);
  sched_.run_until(Time::ms(45));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kDead);
  EXPECT_EQ(c.stats().aps_marked_suspect, 1u);
  EXPECT_EQ(c.stats().aps_marked_dead, 1u);

  // Back from the dead at 45 ms: the probe@50 answer flips Dead ->
  // Recovering (~50 ms), and readmission waits out the 40 ms backoff —
  // the first tick past 90 ms, i.e. tick 100.
  answers[2] = true;
  sched_.run_until(Time::ms(55));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kRecovering);
  sched_.run_until(Time::ms(85));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kRecovering);
  sched_.run_until(Time::ms(105));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kAlive);
  EXPECT_EQ(c.stats().aps_readmitted, 1u);

  // Second death doubles the backoff to 80 ms: silent from 105 ms -> Dead
  // at tick 130; answering again from 135 ms -> Recovering at ~140 ms.
  // With the un-doubled 40 ms backoff it would readmit at tick 190, so
  // still being Recovering at 215 ms proves the doubling.
  answers[2] = false;
  sched_.run_until(Time::ms(135));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kDead);
  answers[2] = true;
  sched_.run_until(Time::ms(145));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kRecovering);
  sched_.run_until(Time::ms(215));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kRecovering)
      << "flap damping did not double the readmission backoff";
  sched_.run_until(Time::ms(235));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kAlive);
  EXPECT_EQ(c.stats().aps_readmitted, 2u);
  EXPECT_GT(c.stats().heartbeats_sent, 0u);
  EXPECT_GT(c.stats().heartbeat_acks, 0u);
}

TEST_F(ControllerTest, DeadApEvictedFromSelectionAndFanout) {
  Controller::Config cfg;
  cfg.liveness_enabled = true;
  cfg.heartbeat_interval = Time::ms(10);
  cfg.heartbeat_miss_threshold = 2;
  cfg.selection_window = Time::ms(500);
  Controller& c = make(cfg);
  bool answers[3] = {true, true, false};  // AP2 never answers: dead by 30 ms
  for (std::uint32_t i = 0; i < 3; ++i) attach_heartbeat_responder(i, &answers[i]);
  sched_.run_until(Time::ms(35));
  ASSERT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kDead);

  // AP2 has by far the best ESNR, but a Dead AP must never win the argmax:
  // the bootstrap goes to the live runner-up.
  send_csi(ApId{2}, 30.0);
  send_csi(ApId{1}, 10.0);
  sched_.run_until(Time::ms(45));
  EXPECT_EQ(count_to_ap<net::StartMsg>(2), 0);
  EXPECT_EQ(count_to_ap<net::StartMsg>(1), 1);
  ack_from(ApId{1});
  sched_.run_until(Time::ms(50));
  ASSERT_EQ(c.serving_ap(kClient).value(), ApId{1});

  // Both AP1 and AP2 heard the client recently (fresh CSI), but the dead
  // AP is erased from the downlink fan-out.
  net::Packet p = net::make_packet();
  p.client = kClient;
  c.send_downlink(p);
  sched_.run_until(Time::ms(55));
  EXPECT_EQ(count_to_ap<net::DownlinkData>(1), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(2), 0);
}

TEST_F(ControllerTest, ServingApDeathForcesFailoverFromWatermark) {
  Controller::Config cfg;
  cfg.liveness_enabled = true;
  cfg.heartbeat_interval = Time::ms(10);
  cfg.heartbeat_miss_threshold = 2;
  cfg.selection_window = Time::ms(500);
  Controller& c = make(cfg);
  bool answers[3] = {true, true, true};
  for (std::uint32_t i = 0; i < 3; ++i) attach_heartbeat_responder(i, &answers[i]);

  // Bootstrap onto AP0 (best CSI), with AP1 as the in-window fallback.
  send_csi(ApId{0}, 30.0);
  send_csi(ApId{1}, 20.0);
  sched_.run_until(Time::ms(2));
  ack_from(ApId{0});
  sched_.run_until(Time::ms(5));
  ASSERT_EQ(c.serving_ap(kClient).value(), ApId{0});
  const std::uint32_t epoch_before = latest_epoch();

  // 100 downlink packets establish the controller-side watermark.
  for (int i = 0; i < 100; ++i) {
    net::Packet p = net::make_packet();
    p.client = kClient;
    c.send_downlink(p);
  }
  sched_.run_until(Time::ms(15));

  // The serving AP dies. The controller cannot run stop -> start through a
  // corpse: it must mint a new epoch and bootstrap AP1 from its own
  // watermark, rewound by failover_replay (100 sent, default replay 32).
  answers[0] = false;
  sched_.run_until(Time::ms(55));
  EXPECT_EQ(c.ap_health(ApId{0}).state, Controller::ApLiveness::kDead);
  EXPECT_EQ(c.stats().forced_failovers, 1u);
  const net::StartMsg* forced = nullptr;
  for (const auto& [from, msg] : ap_log_[1]) {
    if (const auto* s = std::get_if<net::StartMsg>(&msg)) forced = s;
  }
  ASSERT_NE(forced, nullptr);
  EXPECT_EQ(forced->first_unsent_index, (100 - 32) & 0x0fff);
  EXPECT_EQ(forced->epoch, epoch_before + 1);

  // Unacked forced starts ride the same retransmission chain as a normal
  // switch.
  const int starts_before_retx = count_to_ap<net::StartMsg>(1);
  sched_.run_until(Time::ms(95));
  EXPECT_GT(count_to_ap<net::StartMsg>(1), starts_before_retx);
  ack_from(ApId{1});
  sched_.run_until(Time::ms(100));
  ASSERT_EQ(c.serving_ap(kClient).value(), ApId{1});

  // The dead AP comes back. It might be a zombie that still believes it
  // serves the client, so readmission sends a quench stop carrying the
  // client's CURRENT epoch.
  answers[0] = true;
  sched_.run_until(Time::ms(400));
  EXPECT_EQ(c.ap_health(ApId{0}).state, Controller::ApLiveness::kAlive);
  EXPECT_EQ(c.stats().quench_stops, 1u);
  const net::StopMsg* quench = nullptr;
  for (const auto& [from, msg] : ap_log_[0]) {
    if (const auto* s = std::get_if<net::StopMsg>(&msg)) quench = s;
  }
  ASSERT_NE(quench, nullptr);
  EXPECT_EQ(quench->epoch, epoch_before + 1);
}

// --- SpatialIndex: must be byte-identical to the brute-force scans ----------

TEST(SpatialIndexTest, NearestAndNeighborsMatchBruteForce) {
  // 20 random layouts (coarse quarter-metre grid, so exact duplicates and
  // midpoint ties occur) x 50 queries each, checked against the ascending
  // strict-< scans the index replaces.
  std::uint64_t state = 7;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const int num_aps = 1 + static_cast<int>(next() % 40);
    std::vector<double> xs;
    for (int i = 0; i < num_aps; ++i) {
      xs.push_back(static_cast<double>(next() % 2000) / 4.0);
    }
    SpatialIndex idx;
    idx.build(xs, 30.0);
    ASSERT_EQ(idx.num_aps(), num_aps);
    for (int q = 0; q < 50; ++q) {
      // Queries land on, between and well outside the array.
      const double x = static_cast<double>(next() % 2400) / 4.0 - 50.0;
      int brute_best = -1;
      double brute_d = std::numeric_limits<double>::infinity();
      for (int i = 0; i < num_aps; ++i) {
        const double d = std::abs(xs[static_cast<std::size_t>(i)] - x);
        if (d < brute_d) {
          brute_d = d;
          brute_best = i;
        }
      }
      ASSERT_EQ(idx.nearest(x), brute_best)
          << "trial " << trial << " query x=" << x;
      const double r = static_cast<double>(next() % 400) / 4.0;
      std::vector<int> brute;
      for (int i = 0; i < num_aps; ++i) {
        if (std::abs(xs[static_cast<std::size_t>(i)] - x) <= r) {
          brute.push_back(i);
        }
      }
      ASSERT_EQ(idx.neighbors(x, r), brute)
          << "trial " << trial << " query x=" << x << " r=" << r;
    }
  }
}

TEST(SpatialIndexTest, NearestTieGoesToLowestApIndex) {
  SpatialIndex idx;
  idx.build({10.0, 20.0, 20.0, 30.0}, 30.0);
  EXPECT_EQ(idx.nearest(15.0), 0);  // midpoint between AP0 and AP1
  EXPECT_EQ(idx.nearest(20.0), 1);  // co-located AP1 / AP2
  EXPECT_EQ(idx.nearest(25.0), 1);  // 5 m from AP1, AP2 and AP3 alike
}

TEST(SpatialIndexTest, SegmentsClampAndCoverEveryAp) {
  SpatialIndex idx;
  idx.build({0.0, 35.0, 70.0}, 30.0);
  ASSERT_GE(idx.num_segments(), 1);
  // Off-array positions land in the edge segments, never out of range.
  EXPECT_EQ(idx.segment_of(-1e6), 0);
  EXPECT_EQ(idx.segment_of(1e6), idx.num_segments() - 1);
  for (int i = 0; i < idx.num_aps(); ++i) {
    EXPECT_EQ(idx.segment_of(idx.ap_x(i)), idx.segment_of_ap(i)) << "ap " << i;
    EXPECT_GE(idx.segment_of_ap(i), 0);
    EXPECT_LT(idx.segment_of_ap(i), idx.num_segments());
  }
  // Segment assignment is monotone in x.
  EXPECT_LE(idx.segment_of_ap(0), idx.segment_of_ap(1));
  EXPECT_LE(idx.segment_of_ap(1), idx.segment_of_ap(2));
  EXPECT_TRUE(SpatialIndex{}.empty());
  EXPECT_EQ(SpatialIndex{}.nearest(0.0), -1);
}

// --- EsnrTracker with a wired SpatialIndex ----------------------------------

TEST(EsnrTrackerTest, SpatialBoundsScansToAnchorNeighborhood) {
  SpatialIndex idx;
  idx.build({0.0, 50.0, 1000.0}, 30.0);
  EsnrTracker t(Time::ms(10));
  t.set_spatial(&idx, 100.0);
  t.add(kClient, ApId{2}, Time::ms(1), 40.0);
  EXPECT_EQ(t.anchor_ap(kClient), 2);
  EXPECT_EQ(t.best_ap(kClient, Time::ms(2)).value(), ApId{2});
  // The anchor moves to AP0 (1000 m away): the far AP's 40 dB median is
  // still in-window, but out of reach of the new anchor, so it can no
  // longer win the argmax or appear in the fan-out set.
  t.add(kClient, ApId{0}, Time::ms(2), 20.0);
  EXPECT_EQ(t.anchor_ap(kClient), 0);
  EXPECT_EQ(t.best_ap(kClient, Time::ms(3)).value(), ApId{0});
  const auto fresh = t.fresh_aps(kClient, Time::ms(3), Time::ms(50));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], ApId{0});
  // Point queries on a named link stay unfiltered.
  EXPECT_DOUBLE_EQ(t.median(kClient, ApId{2}, Time::ms(3)).value(), 40.0);
  EXPECT_EQ(t.last_heard(kClient, ApId{2}).value(), Time::ms(1));
}

TEST(EsnrTrackerTest, SpatialBoundedMatchesUnboundedWithinRadius) {
  // 8 APs spaced 7.5 m apart: the whole array fits inside the radius the
  // scenario derives (2 * sense_range + slack), so a bounded tracker must
  // answer every query exactly like an unbounded one — the equivalence the
  // default-on spatial index rests on.
  std::vector<double> xs;
  for (int i = 0; i < 8; ++i) xs.push_back(7.5 * i);
  SpatialIndex idx;
  idx.build(xs, 30.0);
  EsnrTracker bounded(Time::ms(10));
  bounded.set_spatial(&idx, 290.0);
  EsnrTracker plain(Time::ms(10));
  std::uint64_t state = 99;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  Time now = Time::zero();
  for (int i = 0; i < 500; ++i) {
    now += Time::us(static_cast<std::int64_t>(next() % 500));
    const ApId ap{static_cast<std::uint32_t>(next() % 8)};
    const double v = static_cast<double>(next() % 400) / 10.0;
    bounded.add(kClient, ap, now, v);
    plain.add(kClient, ap, now, v);
    ASSERT_EQ(bounded.best_ap(kClient, now), plain.best_ap(kClient, now))
        << "step " << i;
    ASSERT_EQ(bounded.fresh_aps(kClient, now, Time::ms(200)),
              plain.fresh_aps(kClient, now, Time::ms(200)))
        << "step " << i;
    ASSERT_EQ(bounded.median(kClient, ap, now), plain.median(kClient, ap, now))
        << "step " << i;
  }
}

// --- Uplink de-dup capacity boundary (the PR 7 off-by-one fix) --------------

TEST_F(ControllerTest, DedupCapacityBoundary) {
  Controller::Config cfg;
  cfg.dedup_capacity = 4;
  Controller& c = make(cfg);
  int delivered = 0;
  c.on_uplink = [&](const net::Packet&) { ++delivered; };
  Time t = Time::zero();
  auto send = [&](std::uint16_t ip_id) {
    net::Packet p = net::make_packet();
    p.client = kClient;
    p.ip_id = ip_id;
    backhaul_.send(NodeId::ap(ApId{0}), NodeId::controller(),
                   net::UplinkData{ApId{0}, p});
    t += Time::ms(5);
    sched_.run_until(t);  // serialize: eviction order must be send order
  };
  // Fill to exactly capacity.
  for (std::uint16_t i = 0; i < 4; ++i) send(i);
  EXPECT_EQ(delivered, 4);
  // At exactly capacity the oldest key must STILL be present: a duplicate
  // of key 0 is dropped. Pre-fix the `size > capacity` check let the table
  // grow to capacity + 1 keys; the fix must not overshoot either (evicting
  // down to capacity - 1 would let this duplicate through).
  send(0);
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(c.stats().uplink_duplicates_dropped, 1u);
  // The (capacity + 1)-th DISTINCT key evicts exactly the oldest key...
  send(4);
  EXPECT_EQ(delivered, 5);
  send(0);  // ...so key 0 passes again (and re-enters, evicting key 1),
  EXPECT_EQ(delivered, 6);
  send(2);  // while a key still inside the FIFO stays suppressed.
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(c.stats().uplink_duplicates_dropped, 2u);
}

// --- Empty-fan-out drops: counted, traced, optionally bounded ---------------

TEST_F(ControllerTest, EmptyFanoutDropIsCountedAndAnnounced) {
  Controller::Config cfg;
  cfg.liveness_enabled = true;  // defaults: 25 ms probes, 3 misses -> Dead
  Controller& c = make(cfg);
  // Nobody answers heartbeats (the fixture's default handlers only log), so
  // every AP accrues its third miss at tick 100 ms.
  sched_.run_until(Time::ms(110));
  ASSERT_EQ(c.ap_health(ApId{0}).state, Controller::ApLiveness::kDead);
  ASSERT_EQ(c.ap_health(ApId{1}).state, Controller::ApLiveness::kDead);
  ASSERT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kDead);

  std::vector<net::ClientId> announced;
  c.on_fanout_empty = [&](net::ClientId client, Time) {
    announced.push_back(client);
  };
  net::Packet p = net::make_packet();
  p.client = kClient;
  c.send_downlink(p);
  sched_.run_until(Time::ms(120));
  // Pre-fix the packet vanished without a trace; now the drop is counted
  // and the observation hook fires.
  EXPECT_EQ(c.stats().fanout_empty_drops, 1u);
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], kClient);
  EXPECT_EQ(c.stats().downlink_packets, 1u);
  EXPECT_EQ(c.stats().downlink_fanout_copies, 0u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(count_to_ap<net::DownlinkData>(i), 0) << "ap " << i;
  }
}

TEST_F(ControllerTest, BoundedFallbackFansOutToSpatialNeighborhood) {
  Controller::Config cfg;
  cfg.bounded_fallback = true;
  Controller& c = make(cfg);
  SpatialIndex idx;
  idx.build({0.0, 60.0, 1000.0}, 30.0);
  c.set_spatial(&idx, 100.0);
  // One CSI report anchors the client at AP0; then 300 ms of silence ages
  // it out of the 200 ms fan-out freshness horizon.
  send_csi(ApId{0}, 20.0);
  sched_.run_until(Time::ms(300));
  net::Packet p = net::make_packet();
  p.client = kClient;
  c.send_downlink(p);
  sched_.run_until(Time::ms(305));
  // The stale fallback used to broadcast to the whole deployment; bounded,
  // it stays within 100 m of the anchor — APs 0 and 1, never the far AP2.
  EXPECT_EQ(count_to_ap<net::DownlinkData>(0), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(1), 1);
  EXPECT_EQ(count_to_ap<net::DownlinkData>(2), 0);
  EXPECT_EQ(c.stats().fanout_empty_drops, 0u);
  // A client that has never reported CSI has no anchor: the fallback stays
  // the full AP set (cold start must reach everyone).
  const ClientId other{1};
  c.add_client(other);
  net::Packet q = net::make_packet();
  q.client = other;
  c.send_downlink(q);
  sched_.run_until(Time::ms(310));
  EXPECT_EQ(count_to_ap<net::DownlinkData>(2), 1);
}

// --- Staggered heartbeats (city-scale liveness) -----------------------------

TEST_F(ControllerTest, StaggeredHeartbeatsRoundRobinBySegment) {
  Controller::Config cfg;
  cfg.liveness_enabled = true;
  cfg.heartbeat_stagger = 3;
  Controller& c = make(cfg);
  SpatialIndex idx;
  idx.build({0.0, 40.0, 80.0}, 30.0);  // three APs in three distinct segments
  c.set_spatial(&idx, 100.0);
  bool answers[3] = {true, true, false};
  for (std::uint32_t i = 0; i < 3; ++i) {
    attach_heartbeat_responder(i, &answers[i]);
  }
  // Ticks land every 25 ms but each probes one segment group: AP0 at 25 ms,
  // AP1 at 50 ms, AP2 at 75 ms, AP0 again at 100 ms, ... so every AP is
  // probed exactly once per 3 ticks instead of on every tick.
  sched_.run_until(Time::ms(90));
  EXPECT_EQ(count_to_ap<net::Heartbeat>(0), 1);
  EXPECT_EQ(count_to_ap<net::Heartbeat>(1), 1);
  EXPECT_EQ(count_to_ap<net::Heartbeat>(2), 1);
  sched_.run_until(Time::ms(165));
  EXPECT_EQ(count_to_ap<net::Heartbeat>(0), 2);
  EXPECT_EQ(count_to_ap<net::Heartbeat>(1), 2);
  EXPECT_EQ(count_to_ap<net::Heartbeat>(2), 2);
  // Detection still converges, just 3x slower: AP2's unanswered probes at
  // 75/150/225 ms are judged at 150/225/300 ms — Dead at the 300 ms tick.
  sched_.run_until(Time::ms(290));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kSuspect);
  sched_.run_until(Time::ms(310));
  EXPECT_EQ(c.ap_health(ApId{2}).state, Controller::ApLiveness::kDead);
  EXPECT_EQ(c.ap_health(ApId{0}).state, Controller::ApLiveness::kAlive);
  EXPECT_EQ(c.ap_health(ApId{1}).state, Controller::ApLiveness::kAlive);
}

// --- StreamingMedian: must be bit-identical to the sort-based formula -------

TEST(StreamingMedianTest, AgreesWithSortedLowerMedianUnderEviction) {
  // Random stream with random inter-arrival gaps, checked sample by sample
  // against util::lower_median over a reference window. Any divergence in
  // the lazy-deletion bookkeeping shows up here.
  const Time window = Time::ms(10);
  StreamingMedian sm(window);
  std::deque<std::pair<Time, double>> ref;

  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };

  Time now = Time::zero();
  for (int i = 0; i < 5000; ++i) {
    now += Time::us(static_cast<std::int64_t>(next() % 800));  // 0-0.8 ms gaps
    // Coarse values force many exact duplicates (the tombstone-key case).
    const double v = static_cast<double>(next() % 64) / 4.0;
    sm.add(now, v);
    ref.emplace_back(now, v);
    while (!ref.empty() && ref.front().first <= now - window) ref.pop_front();

    std::vector<double> xs;
    for (const auto& [w, x] : ref) xs.push_back(x);
    ASSERT_EQ(sm.size(), xs.size());
    ASSERT_TRUE(sm.lower_median(now).has_value());
    // Bit-identical, not approximately equal: both pick the same order
    // statistic of the same multiset.
    ASSERT_EQ(sm.lower_median(now).value(), lower_median(xs)) << "sample " << i;
  }
}

TEST(StreamingMedianTest, SingleSampleWindow) {
  // Samples spaced wider than the window: every add expires its
  // predecessor, so the median is always the newest value (W=1 behaviour).
  StreamingMedian sm(Time::ms(1));
  for (int i = 0; i < 100; ++i) {
    const Time t = Time::ms(2 * i);
    sm.add(t, static_cast<double>(i));
    EXPECT_EQ(sm.size(), 1u);
    EXPECT_EQ(sm.lower_median(t).value(), static_cast<double>(i));
  }
}

TEST(StreamingMedianTest, EmptyWindowReturnsNullopt) {
  StreamingMedian sm(Time::ms(10));
  EXPECT_FALSE(sm.lower_median(Time::zero()).has_value());
  sm.add(Time::ms(0), 5.0);
  EXPECT_TRUE(sm.lower_median(Time::ms(5)).has_value());
  // Whole window ages out; the structure must drain and report empty...
  EXPECT_FALSE(sm.lower_median(Time::ms(50)).has_value());
  EXPECT_TRUE(sm.empty());
  // ...and keep working after the drain.
  sm.add(Time::ms(60), 7.0);
  EXPECT_EQ(sm.lower_median(Time::ms(60)).value(), 7.0);
}

TEST(StreamingMedianTest, ClearResets) {
  StreamingMedian sm(Time::ms(10));
  sm.add(Time::ms(0), 1.0);
  sm.add(Time::ms(1), 2.0);
  sm.clear();
  EXPECT_TRUE(sm.empty());
  EXPECT_FALSE(sm.lower_median(Time::ms(1)).has_value());
  sm.add(Time::ms(2), 9.0);
  EXPECT_EQ(sm.lower_median(Time::ms(2)).value(), 9.0);
}

// --- penalty timers (DESIGN.md §12: boundary flap damping) --------------------

TEST(PenaltyTimerTest, TickExactArmingAndExpiry) {
  PenaltyTimers pt;
  const net::ClientId c{7};
  pt.arm(c, 1, Time::ms(500));
  EXPECT_TRUE(pt.barred(c, 1, Time::ms(499)));
  EXPECT_EQ(pt.remaining(c, 1, Time::ms(100)), Time::ms(400));
  // The bar is half-open: expired exactly at `until`.
  EXPECT_FALSE(pt.barred(c, 1, Time::ms(500)));
  EXPECT_EQ(pt.remaining(c, 1, Time::ms(500)), Time::zero());
  // Other (client, domain) pairs are independent.
  EXPECT_FALSE(pt.barred(c, 2, Time::ms(0)));
  EXPECT_FALSE(pt.barred(net::ClientId{8}, 1, Time::ms(0)));
  // Re-arming extends but never shortens.
  pt.arm(c, 1, Time::ms(800));
  pt.arm(c, 1, Time::ms(600));
  EXPECT_TRUE(pt.barred(c, 1, Time::ms(799)));
  EXPECT_FALSE(pt.barred(c, 1, Time::ms(800)));
  // Lazy sweep drops expired entries only.
  pt.arm(net::ClientId{9}, 3, Time::ms(10));
  EXPECT_EQ(pt.size(), 2u);
  pt.sweep(Time::ms(700));
  EXPECT_EQ(pt.size(), 1u);
}

TEST(PenaltyTimerTest, OscillationPassesOncePerWindow) {
  // The controller's damping discipline, distilled: every time the argmax
  // flips toward the neighbor domain it consults the timer, and every
  // handover attempt (landed or aborted) re-arms it for one penalty window.
  // A client oscillating across the boundary — attempts every W/10 — must
  // get through at most once per window, tick-exactly.
  PenaltyTimers pt;
  const net::ClientId c{3};
  const Time window = Time::ms(500);
  int passes = 0;
  for (int i = 0; i < 100; ++i) {
    const Time now = Time::ms(50 * i);  // attempts every window/10
    if (!pt.barred(c, 1, now)) {
      ++passes;
      pt.arm(c, 1, now + window);
    }
  }
  // 100 attempts spanning [0, 5000 ms): exactly one pass per 500 ms window,
  // the first at t=0 and then each tick-exact expiry instant.
  EXPECT_EQ(passes, 10);
}

}  // namespace
}  // namespace wgtt::core
