// Tests for the event tracer and its analysis queries.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "mobility/trajectory.h"
#include "obs/metrics.h"
#include "scenario/wgtt_system.h"
#include "trace/postmortem.h"
#include "trace/tracer.h"
#include "transport/udp.h"

namespace wgtt::trace {
namespace {

TEST(TracerTest, RecordAndCount) {
  Tracer t;
  t.record({Time::ms(1), EventKind::kFrameTx, -1, 0, -1, 10.0});
  t.record({Time::ms(2), EventKind::kFrameTx, -1, 1, -1, 5.0});
  t.record({Time::ms(3), EventKind::kPacketDelivered, 0, 0, -1, 1400.0});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count(EventKind::kFrameTx), 2u);
  EXPECT_EQ(t.count(EventKind::kPacketDelivered, 0), 1u);
  EXPECT_EQ(t.count(EventKind::kPacketDelivered, 1), 0u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(TracerTest, ThroughputSeries) {
  Tracer t;
  // 125 kB in the first 100 ms bin = 10 Mbit/s.
  for (int i = 0; i < 125; ++i) {
    t.record({Time::millis(i * 0.8), EventKind::kPacketDelivered, 0, 0, -1,
              1000.0});
  }
  const auto series = t.throughput_mbps(0, Time::ms(100), Time::ms(300));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[0], 10.0, 0.1);
  EXPECT_NEAR(series[1], 0.0, 1e-9);
}

TEST(TracerTest, SwitchIntervalsAndTimeline) {
  Tracer t;
  t.record({Time::ms(100), EventKind::kSwitchCompleted, 0, 2, -1, 17.0});
  t.record({Time::ms(300), EventKind::kSwitchCompleted, 0, 3, -1, 18.0});
  t.record({Time::ms(450), EventKind::kSwitchCompleted, 0, 4, -1, 16.0});
  t.record({Time::ms(500), EventKind::kSwitchCompleted, 1, 7, -1, 17.0});
  const auto iv = t.switch_intervals_s(0);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_NEAR(iv[0], 0.2, 1e-9);
  EXPECT_NEAR(iv[1], 0.15, 1e-9);
  const auto tl = t.serving_timeline(0);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[1].second, 3);
}

TEST(TracerTest, ApTxShare) {
  Tracer t;
  for (int i = 0; i < 3; ++i) t.record({Time::ms(i), EventKind::kFrameTx, -1, 0});
  t.record({Time::ms(9), EventKind::kFrameTx, -1, 1});
  const auto share = t.ap_tx_share(2);
  EXPECT_NEAR(share[0], 0.75, 1e-9);
  EXPECT_NEAR(share[1], 0.25, 1e-9);
}

TEST(TracerTest, CsvExport) {
  Tracer t;
  t.record({Time::ms(5), EventKind::kSwitchCompleted, 0, 2, -1, 17.5});
  std::ostringstream out;
  t.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("when_s,kind,client,node,aux,value"), std::string::npos);
  EXPECT_NE(csv.find("switch_completed"), std::string::npos);
  EXPECT_NE(csv.find("17.5"), std::string::npos);
}

TEST(TracerTest, ToStringCoversAllKinds) {
  for (int i = 0; i < kNumEventKinds; ++i) {
    const auto kind = static_cast<EventKind>(i);
    const std::string_view name = to_string(kind);
    EXPECT_NE(name, "?") << "EventKind " << i << " missing from to_string";
    const auto parsed = event_kind_from_string(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(event_kind_from_string("no_such_kind").has_value());
  EXPECT_FALSE(event_kind_from_string("").has_value());
}

TEST(TracerTest, CsvRoundTripAllKinds) {
  Tracer t;
  for (int i = 0; i < kNumEventKinds; ++i) {
    t.record({Time::ms(i), static_cast<EventKind>(i), i, i + 1, -1,
              static_cast<double>(i) * 1.5});
  }
  std::ostringstream out;
  t.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  EXPECT_EQ(line, "when_s,kind,client,node,aux,value");
  int rows = 0;
  while (std::getline(in, line)) {
    // kind is the second CSV column; every row's must parse back.
    const auto a = line.find(',');
    const auto b = line.find(',', a + 1);
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    const std::string kind_name = line.substr(a + 1, b - a - 1);
    const auto parsed = event_kind_from_string(kind_name);
    ASSERT_TRUE(parsed.has_value()) << kind_name;
    EXPECT_EQ(*parsed, static_cast<EventKind>(rows));
    ++rows;
  }
  EXPECT_EQ(rows, kNumEventKinds);
}

TEST(TracerTest, BoundedCapacityDropsOldest) {
  Tracer t(8);
  EXPECT_EQ(t.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    t.record({Time::ms(i), EventKind::kFrameTx, -1, i, -1, 0.0});
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  // Oldest retained event is #12; newest is #19.
  EXPECT_EQ(t.event(0).node, 12);
  EXPECT_EQ(t.event(7).node, 19);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerAttachTest, CapturesLiveSystem) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 91;
  scenario::WgttSystem system(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(25.0));
  const int c = system.add_client(&drive);
  system.start();

  // A user handler installed before attach must keep firing (chaining).
  int user_deliveries = 0;
  system.client(c).on_downlink = [&](const net::Packet&) { ++user_deliveries; };

  Tracer tracer;
  attach(tracer, system);

  transport::UdpSource src(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        system.server_send(std::move(p));
      },
      {.rate_mbps = 12.0, .client = net::ClientId{0}});
  src.start();
  system.run_until(Time::sec(5));

  EXPECT_GT(tracer.count(trace::EventKind::kPacketDelivered, 0), 100u);
  EXPECT_GT(tracer.count(trace::EventKind::kFrameTx), 50u);
  EXPECT_GT(tracer.count(trace::EventKind::kSwitchCompleted, 0), 2u);
  EXPECT_EQ(user_deliveries,
            static_cast<int>(tracer.count(trace::EventKind::kPacketDelivered, 0)));
  // The tx share concentrates on the APs the client actually drove past.
  const auto share = tracer.ap_tx_share(system.num_aps());
  double total = 0.0;
  for (double s : share) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Throughput series integrates to the delivered byte count.
  const auto series = tracer.throughput_mbps(0, Time::ms(100), Time::sec(5));
  double mbit = 0.0;
  for (double v : series) mbit += v * 0.1;
  EXPECT_GT(mbit, 1.0);
}

TEST(PostmortemTest, WritesFullBundleOnViolation) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 17;
  scenario::WgttSystem system(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(25.0));
  const int c = system.add_client(&drive);
  system.start();

  obs::MetricsRegistry metrics;
  system.enable_metrics(metrics, Time::ms(100));
  Tracer tracer;
  attach(tracer, system);

  transport::UdpSource src(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        system.server_send(std::move(p));
      },
      {.rate_mbps = 12.0, .client = net::ClientId{static_cast<unsigned>(c)}});
  src.start();
  system.run_until(Time::sec(3));

  // Fabricate a report (the real trigger path is check_invariants; the
  // bundle writer only cares that it is non-ok).
  scenario::InvariantReport report;
  report.stalled_switches = 1;
  report.violations.push_back("client 0: switch pending for 999 ms");

  const std::string dir =
      ::testing::TempDir() + "wgtt_postmortem_bundle_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(write_postmortem(dir, system, report, &tracer, &metrics));

  for (const char* name : {"invariants.txt", "trace_tail.csv", "metrics.json",
                           "liveness.txt", "clients.txt"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  const auto slurp = [&](const char* name) {
    std::ifstream in(dir + "/" + name);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_NE(slurp("invariants.txt").find("switch pending for 999 ms"),
            std::string::npos);
  EXPECT_NE(slurp("trace_tail.csv").find("when_s,kind,client,node,aux,value"),
            std::string::npos);
  EXPECT_NE(slurp("metrics.json").find("wgtt.metrics.v1"), std::string::npos);
  EXPECT_NE(slurp("clients.txt").find("client 0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wgtt::trace
