// Figure 15: UDP throughput timeline during one 15 mph drive.
//
// Same drive as Figure 14 but with constant-rate UDP: WGTT rides the best
// link continuously; the baseline switches only a handful of times in the
// whole transit and its delivery collapses between handovers.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  DriveConfig cfg;
  cfg.workload = Workload::kUdpDown;
  cfg.udp_rate_mbps = 30.0;
  cfg.mph = 15.0;
  cfg.seed = 29;

  cfg.system = System::kWgtt;
  const DriveResult w = run_drive(cfg);
  cfg.system = System::kBaseline;
  const DriveResult b = run_drive(cfg);

  std::printf("=== Figure 15: UDP during a single 15 mph drive ===\n\n");
  std::printf("%6s %12s %12s\n", "t (s)", "WGTT Mb/s", "base Mb/s");
  const std::size_t bins =
      std::max(w.clients[0].series.size(), b.clients[0].series.size());
  for (std::size_t i = 0; i + 5 <= bins; i += 5) {
    auto avg5 = [&](const ClientResult& c) {
      double acc = 0.0;
      for (std::size_t j = i; j < i + 5 && j < c.series.size(); ++j) {
        acc += c.series[j].mbps;
      }
      return acc / 5.0;
    };
    std::printf("%6.1f %12.2f %12.2f\n", static_cast<double>(i) * 0.1,
                avg5(w.clients[0]), avg5(b.clients[0]));
  }

  std::printf("\nswitches during the drive: WGTT %llu, baseline %llu\n",
              static_cast<unsigned long long>(w.switches),
              static_cast<unsigned long long>(b.switches));
  std::printf("paper: WGTT switches at high frequency (~5/s); Enhanced\n"
              "802.11r switched only ~3 times over the 10 s transit.\n");

  report("fig15/udp_timeseries",
         {{"wgtt_mbps", w.mean_mbps()},
          {"base_mbps", b.mean_mbps()},
          {"wgtt_switches", static_cast<double>(w.switches)},
          {"base_switches", static_cast<double>(b.switches)}});
  return finish(argc, argv);
}
