// Reporting glue for the reproduction benches.
//
// Each bench binary prints its table/figure in the paper's shape on stdout
// and also registers the headline numbers as google-benchmark counters
// (zero-iteration benchmarks), so tooling that consumes benchmark output
// (JSON, CSV) can track them across builds.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>

namespace wgtt::benchx {

/// Registers `name` as a benchmark whose only payload is `counters`.
/// An `ndebug` counter is added automatically (1.0 when compiled with
/// NDEBUG) so every emitted JSON records whether its numbers came from an
/// optimized build (docs/BENCHMARKS.md reads committed files against it).
inline void report(const std::string& name,
                   const std::map<std::string, double>& counters) {
  benchmark::RegisterBenchmark(name.c_str(), [counters](benchmark::State& st) {
    for (auto _ : st) {
      // Measurement happened up front; nothing to time here.
    }
    for (const auto& [key, value] : counters) {
      st.counters[key] = value;
    }
#ifdef NDEBUG
    st.counters["ndebug"] = 1.0;
#else
    st.counters["ndebug"] = 0.0;
#endif
  })->Iterations(1);
}

/// Runs the registered benchmarks; call at the end of main().
inline int finish(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace wgtt::benchx
