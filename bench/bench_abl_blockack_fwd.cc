// Ablation (§3.2.1): block-ACK forwarding on vs off.
//
// With forwarding off, a block ACK the serving AP fails to decode is simply
// lost: every MPDU it covered is retransmitted even though the client
// already has it. With forwarding on, any AP that overheard the BA relays
// it over the backhaul in time to cancel those retransmissions.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Ablation: block-ACK forwarding ===\n\n");
  std::printf("%-14s %10s %14s %16s %14s\n", "", "Mbit/s", "retx/deliv",
              "via fwd BA", "switches");

  std::map<std::string, double> counters;
  for (bool fwd : {true, false}) {
    double mbps = 0.0;
    double retx_ratio = 0.0;
    double via_fwd = 0.0;
    double switches = 0.0;
    constexpr int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      DriveConfig cfg;
      cfg.mph = 15.0;
      cfg.udp_rate_mbps = 30.0;
      cfg.seed = 89 + static_cast<std::uint64_t>(s) * 1000;
      cfg.ba_forwarding = fwd;
      const DriveResult r = run_drive(cfg);
      mbps += r.mean_mbps();
      retx_ratio += static_cast<double>(r.retransmissions) /
                    std::max<std::uint64_t>(r.mpdus_delivered, 1);
      via_fwd += static_cast<double>(r.delivered_via_forwarded_ba);
      switches += static_cast<double>(r.switches);
    }
    mbps /= kSeeds;
    retx_ratio /= kSeeds;
    via_fwd /= kSeeds;
    switches /= kSeeds;
    std::printf("%-14s %10.2f %14.3f %16.0f %14.0f\n",
                fwd ? "forwarding ON" : "forwarding OFF", mbps, retx_ratio,
                via_fwd, switches);
    const char* tag = fwd ? "on" : "off";
    counters[std::string("mbps_") + tag] = mbps;
    counters[std::string("retx_ratio_") + tag] = retx_ratio;
  }
  std::printf("\nexpectation: forwarding trims the retransmission ratio and\n"
              "buys a modest throughput edge near cell boundaries, where BAs\n"
              "are most fragile (paper §3.2.1).\n");

  report("abl/blockack_fwd", counters);
  return finish(argc, argv);
}
