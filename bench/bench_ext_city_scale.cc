// Extension: city-scale deployment (DESIGN.md §9, spatial interest
// management).
//
// The paper's prototype covers ~60 m of road; a transit network covers a
// city. This bench scales the array to 1024 APs (~7.7 km of road) with 256
// concurrent clients spread along it at constant density, and checks the
// property that makes the design city-viable: per-client goodput stays
// flat as the deployment grows, because the spatial index bounds every
// hot-path cost (medium fan-out, CSI sampling, ESNR argmax, downlink
// fan-out) to the O(1) picocell neighborhood around each client — total
// work scales with clients, not with clients x APs.
//
// Knobs that differ from the paper-figure benches (all documented at their
// definitions): Pattern::kDistributed keeps density constant over the
// window, lazy_links skips materialising the 1024 x 256 channel matrix,
// and bounded_fallback keeps a cold client's first fan-out inside its
// neighborhood instead of copying to every AP in the city.
//
// --smoke runs two small 64-AP points through a 2-worker TrialPool
// (sanitizer-compatible; registered as the bench-smoke-city ctest target).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

DriveConfig city_config(int num_aps, int num_clients) {
  DriveConfig cfg;
  cfg.mph = 15.0;
  // Modest per-client rate: the interesting axis is deployment size, not
  // per-cell saturation, and the aggregate offered load still reaches
  // ~1 Gbit/s at the 256-client point.
  cfg.udp_rate_mbps = 4.0;
  cfg.seed = 211;
  cfg.num_clients = num_clients;
  cfg.pattern = Pattern::kDistributed;
  cfg.drive_span_m = 90.0;
  cfg.bounded_fallback = true;
  cfg.record_perf = true;  // sim.events_per_sec in the snapshot
  cfg.metrics_interval = Time::sec(1);
  scenario::GeometryConfig geo;
  geo.num_aps = num_aps;
  geo.lazy_links = true;
  cfg.geometry = geo;
  return cfg;
}

double events_per_sec(const DriveResult& r) {
  return r.metrics ? r.metrics->gauge("sim.events_per_sec").value() : 0.0;
}

void print_row(int aps, int clients, const DriveResult& r) {
  std::printf("%8d %10d %14.2f %12llu %14.0f %12zu\n", aps, clients,
              r.mean_mbps(), static_cast<unsigned long long>(r.switches),
              events_per_sec(r), r.invariant_violations);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  std::printf("=== Extension: city-scale deployment (UDP 4 Mbit/s, 15 mph, "
              "distributed clients) ===\n\n");
  std::printf("%8s %10s %14s %12s %14s %12s\n", "APs", "clients",
              "Mbit/s/client", "switches", "events/s", "violations");

  std::map<std::string, double> counters;
  if (opts.smoke) {
    TrialPool pool({.jobs = opts.jobs});
    pool.submit(city_config(64, 8));
    pool.submit(city_config(64, 16));
    const std::vector<DriveResult> results = pool.run();
    const int clients[] = {8, 16};
    for (std::size_t i = 0; i < results.size(); ++i) {
      print_row(64, clients[i], results[i]);
      const std::string tag = "64x" + std::to_string(clients[i]);
      counters["mbps_" + tag] = results[i].mean_mbps();
      counters["violations_" + tag] =
          static_cast<double>(results[i].invariant_violations);
    }
  } else {
    const std::pair<int, int> points[] = {{64, 16}, {256, 64}, {1024, 256}};
    double mbps_first = 0.0;
    double mbps_last = 0.0;
    for (const auto& [aps, clients] : points) {
      const DriveResult r = run_drive(city_config(aps, clients));
      print_row(aps, clients, r);
      const std::string tag =
          std::to_string(aps) + "x" + std::to_string(clients);
      counters["mbps_" + tag] = r.mean_mbps();
      counters["events_per_sec_" + tag] = events_per_sec(r);
      counters["switch_per_s_" + tag] =
          static_cast<double>(r.switches) / r.duration_s;
      counters["violations_" + tag] =
          static_cast<double>(r.invariant_violations);
      if (aps == points[0].first) mbps_first = r.mean_mbps();
      mbps_last = r.mean_mbps();
    }
    counters["goodput_flatness"] =
        mbps_first > 0.0 ? mbps_last / mbps_first : 0.0;
    std::printf(
        "\nexpectation: Mbit/s per client is flat across the sweep (the\n"
        "acceptance bar is the 1024-AP point within 10%% of the 64-AP\n"
        "point): every per-packet and per-CSI cost is bounded by the\n"
        "spatial neighborhood, so adding road adds work only where the\n"
        "added clients are.\n");
  }

  report("ext/city_scale", counters);
  return finish(argc, argv);
}
