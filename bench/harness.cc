#include "bench/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "mobility/trajectory.h"
#include "phy/mcs.h"
#include "trace/postmortem.h"
#include "trace/timeline.h"
#include "trace/tracer.h"
#include "transport/tcp.h"
#include "transport/udp.h"

namespace wgtt::benchx {

namespace {

/// Builds the mobility pattern; index 0 is the "primary" client.
std::vector<std::unique_ptr<mobility::Trajectory>> make_trajectories(
    const DriveConfig& cfg, double road_span, double ap_spacing) {
  std::vector<std::unique_ptr<mobility::Trajectory>> out;
  const double v = mph_to_mps(cfg.mph);
  const double start = -cfg.lead_in_m;
  if (cfg.mph == 0.0) {
    // Parked clients sit at AP boresights (good coverage, as a parked user
    // would choose), starting from the middle of the array.
    const double mid_ap =
        std::round(road_span / 2.0 / ap_spacing) * ap_spacing;
    for (int i = 0; i < cfg.num_clients; ++i) {
      out.push_back(std::make_unique<mobility::StaticPosition>(
          channel::Vec2{mid_ap + i * ap_spacing, 0.0}));
    }
    return out;
  }
  switch (cfg.pattern) {
    case Pattern::kSingle:
      for (int i = 0; i < cfg.num_clients; ++i) {
        // Convoy with 10 m spacing when more than one client is requested.
        out.push_back(std::make_unique<mobility::LineDrive>(start - 10.0 * i,
                                                            0.0, v));
      }
      break;
    case Pattern::kFollowing:
      // Paper Figure 19 (a): same lane, 3 m spacing.
      out.push_back(std::make_unique<mobility::LineDrive>(start, 0.0, v));
      out.push_back(std::make_unique<mobility::LineDrive>(start - 3.0, 0.0, v));
      break;
    case Pattern::kParallel:
      // (b): adjacent lanes, abreast.
      out.push_back(std::make_unique<mobility::LineDrive>(start, 0.0, v));
      out.push_back(std::make_unique<mobility::LineDrive>(start, -3.5, v));
      break;
    case Pattern::kOpposing:
      // (c): opposite directions, opposite lanes.
      out.push_back(std::make_unique<mobility::LineDrive>(start, 0.0, v));
      out.push_back(std::make_unique<mobility::LineDrive>(
          road_span + cfg.lead_in_m, -3.5, -v));
      break;
    case Pattern::kDistributed: {
      // Starts spread evenly over the part of the array every client can
      // traverse within the horizon: constant client density throughout.
      const double usable = std::max(0.0, road_span - cfg.drive_span_m);
      for (int i = 0; i < cfg.num_clients; ++i) {
        const double frac =
            cfg.num_clients > 1
                ? static_cast<double>(i) / (cfg.num_clients - 1)
                : 0.0;
        out.push_back(
            std::make_unique<mobility::LineDrive>(usable * frac, 0.0, v));
      }
      break;
    }
  }
  return out;
}

/// Measurement window for a client: while it is between the first and last
/// AP (by |x| position), or the whole run for a parked client.
std::pair<Time, Time> measure_window(const mobility::Trajectory& tr,
                                     double last_ap_x, Time horizon) {
  const auto* drive = dynamic_cast<const mobility::LineDrive*>(&tr);
  if (drive == nullptr) return {Time::zero(), horizon};
  const Time a = drive->time_at_x(0.0);
  const Time b = drive->time_at_x(last_ap_x);
  return {std::min(a, b), std::max(a, b)};
}

struct Flow {
  // Exactly one of these is active per client, by workload.
  std::unique_ptr<transport::UdpSource> udp_src;
  transport::UdpSink udp_sink;
  std::unique_ptr<transport::TcpSender> tcp_tx;
  std::unique_ptr<transport::TcpReceiver> tcp_rx;
  bool tcp_alive = true;
  double tcp_death_s = -1.0;
};

}  // namespace

DriveResult run_drive(const DriveConfig& cfg) {
  net::reset_packet_uids();
  DriveResult result;

  // --- geometry & horizon ---------------------------------------------------
  scenario::GeometryConfig geo = cfg.geometry.value_or(scenario::GeometryConfig{});
  geo.seed = cfg.seed;
  const double last_ap_x = (geo.num_aps - 1) * geo.ap_spacing_m;
  const double span = cfg.pattern == Pattern::kDistributed
                          ? cfg.drive_span_m
                          : cfg.lead_in_m + last_ap_x + cfg.lead_in_m;
  const Time horizon = cfg.mph > 0.0
                           ? Time::seconds(span / mph_to_mps(cfg.mph))
                           : Time::sec(10);
  result.duration_s = horizon.to_seconds();

  auto trajectories = make_trajectories(cfg, last_ap_x, geo.ap_spacing_m);
  const int n = static_cast<int>(trajectories.size());

  // --- system construction ----------------------------------------------------
  std::unique_ptr<scenario::WgttSystem> wgtt;
  std::unique_ptr<scenario::BaselineSystem> base;
  sim::Scheduler* sched = nullptr;

  if (cfg.system == System::kWgtt) {
    scenario::WgttSystemConfig scfg;
    scfg.geometry = geo;
    if (cfg.selection_window) scfg.controller.selection_window = *cfg.selection_window;
    if (cfg.hysteresis) scfg.controller.switch_hysteresis = *cfg.hysteresis;
    scfg.controller.metric = cfg.metric;
    if (cfg.ack_timeout) scfg.controller.ack_timeout = *cfg.ack_timeout;
    if (cfg.heartbeat_interval) {
      scfg.controller.heartbeat_interval = *cfg.heartbeat_interval;
    }
    if (cfg.heartbeat_miss_threshold) {
      scfg.controller.heartbeat_miss_threshold = *cfg.heartbeat_miss_threshold;
    }
    scfg.ap_faults = cfg.ap_faults;
    scfg.ap.start_from_newest = cfg.start_from_newest;
    if (cfg.use_spatial_index) scfg.spatial.use_index = *cfg.use_spatial_index;
    scfg.controller.bounded_fallback = cfg.bounded_fallback;
    scfg.use_fanout_pool = cfg.fanout_pool;
    if (cfg.backhaul_link_rate_mbps) {
      scfg.backhaul.link_rate_mbps = *cfg.backhaul_link_rate_mbps;
    }
    if (cfg.backhaul_queue_bytes) {
      scfg.backhaul.link_queue_bytes = *cfg.backhaul_queue_bytes;
    }
    scfg.backhaul.batching = cfg.backhaul_batching;
    if (cfg.backhaul_batch_window) {
      scfg.backhaul.batch_window = *cfg.backhaul_batch_window;
    }
    if (cfg.control_loss_rate > 0.0) {
      for (const auto kind : {net::MsgKind::kStop, net::MsgKind::kStart,
                              net::MsgKind::kSwitchAck}) {
        scfg.backhaul.fault(kind).loss_rate = cfg.control_loss_rate;
      }
    }
    scfg.num_domains = cfg.num_domains;
    if (cfg.num_domains > 1) {
      scfg.controller_faults = cfg.controller_faults;
      if (cfg.inter_controller_loss_rate > 0.0) {
        for (const auto kind :
             {net::MsgKind::kCsiForward, net::MsgKind::kUplinkForward,
              net::MsgKind::kDownlinkForward, net::MsgKind::kHandoverRequest,
              net::MsgKind::kHandoverAck, net::MsgKind::kDomainHeartbeat,
              net::MsgKind::kDomainHeartbeatAck, net::MsgKind::kDomainSync}) {
          scfg.backhaul.fault(kind).loss_rate = cfg.inter_controller_loss_rate;
        }
      }
    }
    wgtt = std::make_unique<scenario::WgttSystem>(scfg);
    sched = &wgtt->sched();
  } else {
    scenario::BaselineSystemConfig scfg;
    scfg.geometry = geo;
    if (cfg.baseline_persistence) {
      scfg.client.below_threshold_persistence = *cfg.baseline_persistence;
      scfg.client.beacon_staleness =
          std::max(*cfg.baseline_persistence, Time::ms(600));
    }
    base = std::make_unique<scenario::BaselineSystem>(scfg);
    sched = &base->sched();
  }

  for (int i = 0; i < n; ++i) {
    if (wgtt) {
      wgtt->add_client(trajectories[static_cast<std::size_t>(i)].get());
    } else {
      base->add_client(trajectories[static_cast<std::size_t>(i)].get());
    }
  }
  if (wgtt) {
    wgtt->start();
    if (!cfg.ba_forwarding) {
      for (int i = 0; i < wgtt->num_aps(); ++i) wgtt->ap(i).set_ba_forwarding(false);
    }
  } else {
    base->start();
  }

  // --- metrics ----------------------------------------------------------------
  const bool want_metrics =
      (cfg.collect_metrics || cfg.profile || !cfg.metrics_path.empty()) &&
      wgtt != nullptr;
  if (want_metrics) {
    result.metrics = std::make_shared<obs::MetricsRegistry>();
    wgtt->enable_metrics(*result.metrics, cfg.metrics_interval);
    // Pre-register the tcp.* keys so every snapshot carries them, TCP
    // workload or not.
    transport::TcpSender::register_metrics(*result.metrics);
  }

  // --- instrumentation ---------------------------------------------------------
  result.clients.resize(static_cast<std::size_t>(n));

  // Association timelines (every controller: with domains, whichever owns
  // the client at the time reports its switches).
  if (wgtt) {
    for (int d = 0; d < wgtt->num_domains(); ++d) {
      wgtt->controller(d).on_serving_changed =
          [&](net::ClientId c, net::ApId ap, Time t) {
            result.clients[net::index_of(c)].assoc_timeline.emplace_back(
                t.to_seconds(), static_cast<int>(net::index_of(ap)));
          };
    }
  } else {
    base->router().on_association = [&](net::ClientId c, net::ApId ap, Time t) {
      result.clients[net::index_of(c)].assoc_timeline.emplace_back(
          t.to_seconds(), static_cast<int>(net::index_of(ap)));
    };
  }

  // Bitrate samples: the PHY rate of every downlink data frame the client
  // actually decoded (Figure 16 plots the link bit rate observed in the
  // client's tcpdump — i.e. of received frames, not of attempts).
  for (int i = 0; i < n; ++i) {
    mac::WifiMac& m = wgtt ? wgtt->client(i).mac() : base->client(i).mac();
    // Chain with any existing handler (the baseline client tracks beacon
    // RSSI through on_heard — clobbering it would break association).
    m.on_heard = [&result, prev = std::move(m.on_heard)](
                     const mac::Frame& f, bool decoded,
                     const channel::CsiMeasurement& csi) {
      if (prev) prev(f, decoded, csi);
      if (!decoded) return;
      if (const auto* df = std::get_if<mac::DataFrame>(&f.body)) {
        result.bitrate_mbps_samples.push_back(
            phy::mcs_info(df->mcs).data_rate_mbps);
      }
    };
  }


  // --- traffic ------------------------------------------------------------------
  std::vector<Flow> flows(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Flow& f = flows[static_cast<std::size_t>(i)];
    const net::ClientId cid{static_cast<std::uint32_t>(i)};
    auto server_send = [&, i](net::Packet p) {
      p.client = net::ClientId{static_cast<std::uint32_t>(i)};
      if (wgtt) {
        wgtt->server_send(std::move(p));
      } else {
        base->server_send(std::move(p));
      }
    };
    auto client_send = [&, i](net::Packet p) {
      if (wgtt) {
        wgtt->client(i).send_uplink(std::move(p));
      } else {
        base->client(i).send_uplink(std::move(p));
      }
    };

    switch (cfg.workload) {
      case Workload::kUdpDown: {
        f.udp_src = std::make_unique<transport::UdpSource>(
            *sched, server_send,
            transport::UdpSource::Config{.rate_mbps = cfg.udp_rate_mbps,
                                         .client = cid});
        auto on_down = [&f, sched](const net::Packet& p) {
          f.udp_sink.on_packet(sched->now(), p);
        };
        if (wgtt) {
          wgtt->client(i).on_downlink = on_down;
        } else {
          base->client(i).on_downlink = on_down;
        }
        f.udp_src->start();
        break;
      }
      case Workload::kUdpUp: {
        f.udp_src = std::make_unique<transport::UdpSource>(
            *sched, client_send,
            transport::UdpSource::Config{.rate_mbps = cfg.udp_rate_mbps,
                                         .client = cid,
                                         .downlink = false});
        f.udp_src->start();
        break;
      }
      case Workload::kTcpDown: {
        transport::TcpSender::Config scfg;
        scfg.client = cid;
        f.tcp_tx = std::make_unique<transport::TcpSender>(*sched, server_send,
                                                          scfg);
        if (result.metrics) f.tcp_tx->set_metrics(result.metrics.get());
        transport::TcpReceiver::Config rcfg;
        rcfg.client = cid;
        f.tcp_rx = std::make_unique<transport::TcpReceiver>(*sched, client_send,
                                                            rcfg);
        auto on_down = [&f](const net::Packet& p) { f.tcp_rx->on_data_packet(p); };
        if (wgtt) {
          wgtt->client(i).on_downlink = on_down;
        } else {
          base->client(i).on_downlink = on_down;
        }
        f.tcp_tx->on_dead = [&f, sched] {
          f.tcp_alive = false;
          f.tcp_death_s = sched->now().to_seconds();
        };
        f.tcp_tx->set_unlimited(true);
        break;
      }
    }
  }

  // Uplink demultiplexing at the server side.
  auto server_uplink = [&](const net::Packet& p) {
    const auto i = static_cast<std::size_t>(net::index_of(p.client));
    if (i >= flows.size()) return;
    Flow& f = flows[i];
    switch (cfg.workload) {
      case Workload::kUdpUp:
        f.udp_sink.on_packet(sched->now(), p);
        break;
      case Workload::kTcpDown:
        if (f.tcp_tx) f.tcp_tx->on_ack_packet(p);
        break;
      case Workload::kUdpDown:
        break;  // no meaningful uplink
    }
  };
  if (wgtt) {
    wgtt->on_server_uplink = server_uplink;
  } else {
    base->on_server_uplink = server_uplink;
  }

  // --- accuracy probe -------------------------------------------------------------
  std::vector<int> probe_match(static_cast<std::size_t>(n), 0);
  std::vector<int> probe_total(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < n; ++i) {
    if (cfg.pattern == Pattern::kDistributed) {
      // Every distributed client is in-array for the whole run; skip the
      // bootstrap transient, then measure to the horizon.
      windows.emplace_back(std::min(Time::ms(500), horizon), horizon);
    } else {
      windows.push_back(measure_window(
          *trajectories[static_cast<std::size_t>(i)], last_ap_x, horizon));
    }
  }
  std::function<void()> probe = [&] {
    for (int i = 0; i < n; ++i) {
      const auto [t0, t1] = windows[static_cast<std::size_t>(i)];
      const Time now = sched->now();
      if (now < t0 || now >= t1) continue;
      const int serving = wgtt ? wgtt->serving_ap(i) : base->serving_ap(i);
      // WgttSystem::optimal_ap bounds the ground-truth argmax to the
      // sense-range neighborhood when the spatial index is on (identical
      // answer whenever the whole array is in range, as in the testbed).
      const int optimal = wgtt ? wgtt->optimal_ap(i, now)
                               : base->geometry().optimal_ap(i, now);
      ++probe_total[static_cast<std::size_t>(i)];
      if (serving == optimal) ++probe_match[static_cast<std::size_t>(i)];
    }
    sched->schedule_in(cfg.accuracy_probe, probe);
  };
  sched->schedule_in(cfg.accuracy_probe, probe);

  // --- observability ----------------------------------------------------------------
  // Attached after every other hook consumer so the tracer/timeline chain
  // last (the trace::attach contract). The tracer also backs the post-mortem
  // bundle's flight-recorder tail, so a postmortem directory alone attaches
  // one — pure observation either way, byte-identity is unaffected.
  std::string postmortem_dir = cfg.postmortem_dir;
  if (postmortem_dir.empty()) {
    if (const char* env = std::getenv("WGTT_DUMP_ON_VIOLATION");
        env != nullptr && *env != '\0') {
      postmortem_dir = env;
    }
  }
  std::unique_ptr<trace::Tracer> tracer;
  if (wgtt && (!cfg.trace_csv_path.empty() || !postmortem_dir.empty())) {
    tracer = std::make_unique<trace::Tracer>();
    trace::attach(*tracer, *wgtt);
  }
  std::unique_ptr<trace::TimelineRecorder> timeline;
  if (wgtt && !cfg.timeline_path.empty()) {
    timeline = std::make_unique<trace::TimelineRecorder>(
        *wgtt, trace::TimelineRecorder::Config{.tick = cfg.timeline_tick});
    if (cfg.workload == Workload::kTcpDown) {
      timeline->set_transport_probe(
          [&flows](int i)
              -> std::optional<trace::TimelineRecorder::TransportSample> {
            if (i < 0 || static_cast<std::size_t>(i) >= flows.size()) {
              return std::nullopt;
            }
            const auto& tx = flows[static_cast<std::size_t>(i)].tcp_tx;
            if (!tx) return std::nullopt;
            return trace::TimelineRecorder::TransportSample{
                tx->cwnd_segments(), tx->stats().last_srtt_ms};
          });
    }
    timeline->start();
  }
  sim::EventProfiler profiler;
  if (cfg.profile && wgtt) sched->set_profiler(&profiler);

  // --- run --------------------------------------------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  if (wgtt) {
    wgtt->run_until(horizon);
  } else {
    base->run_until(horizon);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (cfg.profile && wgtt) sched->set_profiler(nullptr);

  // --- collect ------------------------------------------------------------------------
  scenario::InvariantReport invariants;
  for (int i = 0; i < n; ++i) {
    ClientResult& cr = result.clients[static_cast<std::size_t>(i)];
    Flow& f = flows[static_cast<std::size_t>(i)];
    const auto [t0, t1] = windows[static_cast<std::size_t>(i)];
    result.in_array_s = (t1 - t0).to_seconds();
    const transport::ThroughputRecorder* rec = nullptr;
    if (cfg.workload == Workload::kTcpDown) {
      rec = &f.tcp_rx->goodput();
      cr.tcp_alive = f.tcp_alive;
      cr.tcp_death_s = f.tcp_death_s;
    } else {
      rec = &f.udp_sink.throughput();
    }
    cr.mbps = rec->average_mbps(t0, t1);
    cr.bytes = rec->total_bytes();
    cr.series = rec->series();
    if (probe_total[static_cast<std::size_t>(i)] > 0) {
      cr.accuracy = static_cast<double>(probe_match[static_cast<std::size_t>(i)]) /
                    probe_total[static_cast<std::size_t>(i)];
    }
    if (cfg.workload == Workload::kUdpUp) {
      // Loss per 500 ms window against the offered rate, within the
      // in-array span. (Sequence-gap accounting alone under-reports total
      // outages: an empty window has no gaps.)
      for (Time w = t0; w + Time::ms(500) <= t1; w += Time::ms(500)) {
        const double got = rec->average_mbps(w, w + Time::ms(500));
        cr.uplink_loss_windows.push_back(
            std::clamp(1.0 - got / cfg.udp_rate_mbps, 0.0, 1.0));
      }
    }
  }

  if (wgtt) {
    for (int d = 0; d < wgtt->num_domains(); ++d) {
      const auto& st = wgtt->controller(d).stats();
      result.switches += st.switches_completed;
      for (const auto& sw : wgtt->controller(d).switch_log()) {
        result.switch_protocol_ms.push_back(
            (sw.completed - sw.initiated).to_millis());
      }
      result.uplink_dups_dropped += st.uplink_duplicates_dropped;
      result.uplink_packets += st.uplink_packets;
      result.stop_retransmissions += st.stop_retransmissions;
      result.stale_acks_ignored += st.stale_acks_ignored;
      result.aps_marked_dead += st.aps_marked_dead;
      result.aps_readmitted += st.aps_readmitted;
      result.forced_failovers += st.forced_failovers;
      result.failovers_unserved += st.failovers_unserved;
      result.handovers_completed += st.handovers_out;
      result.handover_retries += st.handover_retries;
      result.handover_aborts += st.handover_aborts;
      result.penalty_blocked += st.penalty_blocked;
      result.controllers_marked_dead += st.peers_marked_dead;
      result.clients_adopted += st.clients_adopted;
      result.ownership_yields += st.ownership_yields;
    }
    for (int i = 0; i < n; ++i) {
      result.downlink_dups_dropped +=
          wgtt->client(i).downlink_duplicates_dropped();
    }
    invariants = wgtt->check_invariants();
    result.invariant_violations = invariants.violations.size();
    for (int i = 0; i < wgtt->num_aps(); ++i) {
      const auto& aps = wgtt->ap(i).stats();
      result.idempotent_replies += aps.stop_duplicates + aps.start_duplicates +
                                   aps.stale_control_ignored;
    }
    for (int i = 0; i < wgtt->num_aps(); ++i) {
      const auto s = wgtt->ap(i).mac().total_stats();
      result.retransmissions += s.retransmissions;
      result.mpdus_delivered += s.mpdus_delivered;
      result.delivered_via_forwarded_ba += s.mpdus_delivered_via_forwarded_ba;
      result.stale_dropped += wgtt->ap(i).stats().stale_dropped;
    }
    for (int i = 0; i < n; ++i) {
      result.ba_heard += wgtt->client(i).mac().ba_frames_heard();
      result.ba_collided += wgtt->client(i).mac().ba_frames_collided();
    }
  } else {
    for (int i = 0; i < n; ++i) {
      result.switches += base->client(i).stats().handovers_completed;
    }
    for (int i = 0; i < base->num_aps(); ++i) {
      const auto s = base->ap(i).mac().total_stats();
      result.retransmissions += s.retransmissions;
      result.mpdus_delivered += s.mpdus_delivered;
    }
    for (int i = 0; i < n; ++i) {
      result.ba_heard += base->client(i).mac().ba_frames_heard();
      result.ba_collided += base->client(i).mac().ba_frames_collided();
    }
  }

  if (cfg.record_perf) {
    // Wall-clock gauge, opt-in only: see the DriveConfig field comment.
    if (!result.metrics) result.metrics = std::make_shared<obs::MetricsRegistry>();
    result.metrics->gauge("sim.events_per_sec")
        .set(wall_s > 0.0
                 ? static_cast<double>(sched->events_executed()) / wall_s
                 : 0.0);
  }

  if (cfg.profile && wgtt) {
    // Wall-clock breakdown, opt-in only (record_perf rule).
    if (!result.metrics) result.metrics = std::make_shared<obs::MetricsRegistry>();
    profiler.flush_to(*result.metrics);
    result.metrics->gauge("sim.profile.wall_coverage")
        .set(wall_s > 0.0
                 ? static_cast<double>(profiler.total_ns()) / 1e9 / wall_s
                 : 0.0);
  }

  if (timeline) {
    timeline->stop();
    std::ofstream out(cfg.timeline_path);
    if (out) timeline->write_jsonl(out);
  }
  if (tracer && !cfg.trace_csv_path.empty()) {
    std::ofstream out(cfg.trace_csv_path);
    if (out) tracer->write_csv(out);
  }
  if (wgtt && !postmortem_dir.empty() && !invariants.ok()) {
    trace::write_postmortem(postmortem_dir, *wgtt, invariants, tracer.get(),
                            result.metrics.get());
  }

  if (result.metrics && !cfg.metrics_path.empty()) {
    std::ofstream out(cfg.metrics_path);
    if (out) result.metrics->write_json(out);
  }
  return result;
}

std::size_t TrialPool::submit(DriveConfig config) {
  if (!config.metrics_path.empty()) {
    // A shared per-trial path would have each trial clobber the previous
    // one's snapshot; redirect it into the pool's single merged write.
    if (opts_.metrics_path.empty()) opts_.metrics_path = config.metrics_path;
    config.collect_metrics = true;
    config.metrics_path.clear();
  }
  trials_.push_back(std::move(config));
  return trials_.size() - 1;
}

int TrialPool::jobs() const {
  if (opts_.jobs > 0) return opts_.jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<DriveResult> TrialPool::run() {
  const std::size_t count = trials_.size();
  std::vector<DriveResult> results(count);
  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(jobs()), std::max<std::size_t>(count, 1)));

  const auto start = std::chrono::steady_clock::now();
  std::exception_ptr error;
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        results[i] = run_drive(trials_[i]);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            results[i] = run_drive(trials_[i]);
          } catch (...) {
            std::scoped_lock lock(err_mu);
            if (!error) error = std::current_exception();
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  trials_per_sec_ =
      wall_s > 0.0 ? static_cast<double>(count) / wall_s : 0.0;

  // Merge in submission order — byte-identical output for any job count.
  merged_.reset();
  for (const auto& r : results) {
    if (!r.metrics) continue;
    if (!merged_) merged_ = std::make_shared<obs::MetricsRegistry>();
    merged_->merge_from(*r.metrics);
  }
  if (opts_.record_throughput) {
    if (!merged_) merged_ = std::make_shared<obs::MetricsRegistry>();
    merged_->gauge("harness.trials_per_sec").set(trials_per_sec_);
  }
  if (merged_ && !opts_.metrics_path.empty()) {
    std::ofstream out(opts_.metrics_path);
    if (out) merged_->write_json(out);
  }

  trials_.clear();
  if (error) std::rethrow_exception(error);
  return results;
}

BenchOptions parse_bench_options(int* argc, char** argv) {
  BenchOptions opts;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--profile") {
      opts.profile = true;
    } else if (arg == "--jobs" && i + 1 < *argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opts.jobs = std::atoi(argv[i] + 7);
    } else if (arg == "--trace-dir" && i + 1 < *argc) {
      opts.trace_dir = argv[++i];
    } else if (arg.rfind("--trace-dir=", 0) == 0) {
      opts.trace_dir = arg.substr(12);
    } else {
      argv[out++] = argv[i];
    }
  }
  argv[out] = nullptr;
  *argc = out;
  // Trace artifacts are written with plain ofstream, which cannot create
  // directories — make the export directory here so a bare
  // `--trace-dir /tmp/tr` works without a prior mkdir.
  if (!opts.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --trace-dir '%s': %s\n",
                   opts.trace_dir.c_str(), ec.message().c_str());
      std::exit(1);
    }
  }
  return opts;
}

double mean_mbps_over_seeds(DriveConfig config, int seeds, int jobs) {
  TrialPool pool(TrialPool::Options{.jobs = jobs});
  for (int s = 0; s < seeds; ++s) {
    config.seed = config.seed * 7919 + 13;  // unchanged pre-TrialPool chain
    pool.submit(config);
  }
  const auto results = pool.run();
  double total = 0.0;
  for (const auto& r : results) total += r.mean_mbps();
  return total / seeds;
}

double mean_mbps_over_seeds(DriveConfig config, int seeds) {
  return mean_mbps_over_seeds(std::move(config), seeds, 1);
}

}  // namespace wgtt::benchx
