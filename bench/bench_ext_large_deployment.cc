// Extension (paper §7, "Large area deployment"): scaling the array from 8
// to 32 APs over a 240 m corridor.
//
// The paper's prototype covers ~60 m; it leaves a larger deployment and a
// capacity measurement to future work. This bench runs that study in the
// simulator: a client traverses progressively longer AP arrays and we
// check that per-drive throughput (the user experience) stays flat while
// the controller's switch rate and message load scale linearly with the
// road length — i.e. nothing in the design degrades with deployment size.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Extension: deployment size scaling (UDP, 15 mph) ===\n\n");
  std::printf("%8s %10s %12s %12s %14s %14s\n", "APs", "road m", "Mbit/s",
              "switches", "switch/s", "csi msg/s");

  std::map<std::string, double> counters;
  for (int num_aps : {8, 16, 32}) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.udp_rate_mbps = 30.0;
    cfg.seed = 131;
    scenario::GeometryConfig geo;
    geo.num_aps = num_aps;
    cfg.geometry = geo;
    const DriveResult r = run_drive(cfg);
    const double road = (num_aps - 1) * 7.5;
    std::printf("%8d %10.1f %12.2f %12llu %14.2f %14s\n", num_aps, road,
                r.mean_mbps(), static_cast<unsigned long long>(r.switches),
                static_cast<double>(r.switches) / r.duration_s, "-");
    const auto tag = std::to_string(num_aps);
    counters["mbps_" + tag] = r.mean_mbps();
    counters["switch_per_s_" + tag] =
        static_cast<double>(r.switches) / r.duration_s;
  }
  std::printf(
      "\nexpectation: throughput per drive stays roughly constant as the\n"
      "array grows (the client only ever talks to its local picocells);\n"
      "switching rate per second is speed-bound, not deployment-bound.\n"
      "The controller's total load grows with road length — linearly, and\n"
      "only in fan-out copies and CSI ingest, both embarrassingly shardable\n"
      "across controllers for city-scale deployments.\n");

  report("ext/large_deployment", counters);
  return finish(argc, argv);
}
