// Figures 19/20: two-client driving patterns — following (3 m gap),
// parallel (adjacent lanes), opposing directions.
//
// Paper: opposing is best (the clients are far apart for most of the
// transit, minimal contention), parallel is worst (they carrier-sense each
// other the whole way), and WGTT beats the baseline in every pattern.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Figure 20: two-client driving patterns at 15 mph ===\n\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "pattern", "WGTT tcp", "base tcp",
              "WGTT udp", "base udp");

  std::map<std::string, double> counters;
  const std::pair<Pattern, const char*> patterns[] = {
      {Pattern::kFollowing, "following"},
      {Pattern::kParallel, "parallel"},
      {Pattern::kOpposing, "opposing"},
  };
  for (const auto& [pattern, name] : patterns) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.num_clients = 2;
    cfg.pattern = pattern;
    cfg.udp_rate_mbps = 15.0;  // the paper's constant rate for this figure
    cfg.seed = 47;

    cfg.workload = Workload::kTcpDown;
    cfg.system = System::kWgtt;
    const double wt = run_drive(cfg).mean_mbps();
    cfg.system = System::kBaseline;
    const double bt = run_drive(cfg).mean_mbps();

    cfg.workload = Workload::kUdpDown;
    cfg.system = System::kWgtt;
    const double wu = run_drive(cfg).mean_mbps();
    cfg.system = System::kBaseline;
    const double bu = run_drive(cfg).mean_mbps();

    std::printf("%-12s %12.2f %12.2f %12.2f %12.2f\n", name, wt, bt, wu, bu);
    counters[std::string("wgtt_udp_") + name] = wu;
    counters[std::string("base_udp_") + name] = bu;
    counters[std::string("wgtt_tcp_") + name] = wt;
  }
  std::printf("\npaper: opposing highest (clients far apart most of the\n"
              "time), parallel lowest (carrier sensing each other), WGTT\n"
              "above the baseline in all three.\n");

  report("fig20/driving_patterns", counters);
  return finish(argc, argv);
}
