// Ablation: control-plane loss vs switching-protocol latency.
//
// Loss is injected on stop/start/ack messages ONLY (the data plane rides an
// untouched backhaul), sweeping 0-20%. Each lost control message costs one
// 30 ms ack-timeout round, so the mean stop->ack latency should climb from
// the paper's ~17 ms by roughly loss * 3 * 30 ms per retransmitted leg,
// while goodput and the protocol invariants stay intact — the epoch-tagged
// handshake absorbs the duplicate deliveries the retransmit chain creates.
//
// Each loss rate is one independent TrialPool trial, fanned across --jobs
// workers.
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"
#include "util/stats.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const std::vector<double> losses =
      opts.smoke ? std::vector<double>{0.0, 0.10}
                 : std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.20};

  std::printf("=== Ablation: control-plane loss vs switch time ===\n\n");
  std::printf("%-28s", "Control loss (%)");
  for (double l : losses) std::printf("%9.0f", l * 100.0);
  std::printf("\n");

  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  for (double loss : losses) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.udp_rate_mbps = 30.0;
    cfg.control_loss_rate = loss;
    cfg.seed = 29 + static_cast<std::uint64_t>(loss * 100.0);
    pool.submit(cfg);
  }
  const std::vector<DriveResult> results = pool.run();

  std::vector<double> means, p95s, mbps, retx, violations;
  for (const DriveResult& r : results) {
    RunningStats s;
    std::vector<double> sorted = r.switch_protocol_ms;
    std::sort(sorted.begin(), sorted.end());
    for (double ms : sorted) s.add(ms);
    means.push_back(s.mean());
    p95s.push_back(sorted.empty()
                       ? 0.0
                       : sorted[static_cast<std::size_t>(
                             0.95 * static_cast<double>(sorted.size() - 1))]);
    mbps.push_back(r.mean_mbps());
    retx.push_back(static_cast<double>(r.stop_retransmissions));
    violations.push_back(static_cast<double>(r.invariant_violations));
  }
  std::printf("%-28s", "Mean switch time (ms)");
  for (double m : means) std::printf("%9.1f", m);
  std::printf("\n%-28s", "p95 switch time (ms)");
  for (double p : p95s) std::printf("%9.1f", p);
  std::printf("\n%-28s", "Goodput (Mb/s)");
  for (double m : mbps) std::printf("%9.1f", m);
  std::printf("\n%-28s", "Stop retransmissions");
  for (double x : retx) std::printf("%9.0f", x);
  std::printf("\n%-28s", "Invariant violations");
  for (double v : violations) std::printf("%9.0f", v);
  std::printf(
      "\n\nexpected: mean grows ~ +30 ms per lost control leg; goodput "
      "roughly flat; zero invariant violations at every loss rate\n");

  std::map<std::string, double> counters;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const auto pct = std::to_string(static_cast<int>(losses[i] * 100.0));
    counters["mean_ms_loss" + pct] = means[i];
    counters["p95_ms_loss" + pct] = p95s[i];
    counters["mbps_loss" + pct] = mbps[i];
    counters["violations_loss" + pct] = violations[i];
  }
  report("abl/control_loss", counters);
  return finish(argc, argv);
}
