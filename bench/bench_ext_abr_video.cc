// Extension: DASH-style adaptive-bitrate video over WGTT vs the baseline.
//
// The paper's §5.4 video study uses a fixed 2.5 Mbit/s stream; a modern
// player adapts across a bitrate ladder instead. The sharper question ABR
// asks of a vehicular network is *stability*: a stop-and-go channel forces
// the controller down the ladder and into stalls, while a channel that is
// merely "moderate but steady" lets it sit high. WGTT's whole design is to
// turn a string of picocells into exactly that steady channel.
#include <cstdio>
#include <memory>

#include "apps/abr.h"
#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "scenario/wgtt_system.h"
#include "transport/tcp.h"

using namespace wgtt;

namespace {

apps::AbrPlayer::Report run_abr(bool wgtt_system, double mph,
                                std::uint64_t seed) {
  net::reset_packet_uids();
  const double lead = 15.0;
  const Time horizon = Time::seconds((lead + 52.5 + lead) / mph_to_mps(mph));

  std::unique_ptr<scenario::WgttSystem> wgtt;
  std::unique_ptr<scenario::BaselineSystem> base;
  sim::Scheduler* sched = nullptr;
  mobility::LineDrive drive(-lead, 0.0, mph_to_mps(mph));
  if (wgtt_system) {
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    wgtt = std::make_unique<scenario::WgttSystem>(cfg);
    wgtt->add_client(&drive);
    wgtt->start();
    sched = &wgtt->sched();
  } else {
    scenario::BaselineSystemConfig cfg;
    cfg.geometry.seed = seed;
    base = std::make_unique<scenario::BaselineSystem>(cfg);
    base->add_client(&drive);
    base->start();
    sched = &base->sched();
  }

  transport::TcpSender sender(
      *sched,
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        if (wgtt) {
          wgtt->server_send(std::move(p));
        } else {
          base->server_send(std::move(p));
        }
      },
      {.client = net::ClientId{0}});
  transport::TcpReceiver receiver(
      *sched,
      [&](net::Packet p) {
        if (wgtt) {
          wgtt->client(0).send_uplink(std::move(p));
        } else {
          base->client(0).send_uplink(std::move(p));
        }
      },
      {.client = net::ClientId{0}});
  auto on_down = [&](const net::Packet& p) { receiver.on_data_packet(p); };
  auto on_up = [&](const net::Packet& p) { sender.on_ack_packet(p); };
  if (wgtt) {
    wgtt->client(0).on_downlink = on_down;
    wgtt->on_server_uplink = on_up;
  } else {
    base->client(0).on_downlink = on_down;
    base->on_server_uplink = on_up;
  }

  apps::AbrPlayer player(*sched, {});
  player.request_bytes = [&](std::uint64_t bytes) { sender.send_bytes(bytes); };
  receiver.on_delivered = [&](std::uint64_t, Time) {
    player.on_progress(receiver.bytes_delivered());
  };
  player.start();
  if (wgtt) {
    wgtt->run_until(horizon);
  } else {
    base->run_until(horizon);
  }
  player.stop();
  return player.report();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: adaptive-bitrate video during the drive ===\n\n");
  std::printf("%-10s %10s %14s %12s %12s %12s\n", "system", "speed",
              "played Mb/s", "rebuffer", "switches", "top rung");

  std::map<std::string, double> counters;
  for (double mph : {5.0, 15.0}) {
    for (bool wgtt : {true, false}) {
      const auto r = run_abr(wgtt, mph, 83);
      std::printf("%-10s %7.0f mph %14.2f %12.2f %12d %11.0f%%\n",
                  wgtt ? "WGTT" : "baseline", mph, r.mean_played_mbps,
                  r.rebuffer_ratio, r.quality_switches,
                  r.top_rung_fraction * 100.0);
      const auto tag = std::string(wgtt ? "wgtt_" : "base_") +
                       std::to_string(static_cast<int>(mph));
      counters["played_mbps_" + tag] = r.mean_played_mbps;
      counters["rebuffer_" + tag] = r.rebuffer_ratio;
    }
  }
  std::printf(
      "\nexpectation: WGTT watches most of the drive at the top of the\n"
      "ladder with zero rebuffering; the baseline's stop-and-go channel\n"
      "forces rung oscillation and stalls. Extends the paper's Table 4\n"
      "fixed-rate study to modern ABR players.\n");

  benchx::report("ext/abr_video", counters);
  return benchx::finish(argc, argv);
}
