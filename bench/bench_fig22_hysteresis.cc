// Figure 22: impact of the switching time hysteresis (120 -> 40 ms).
//
// A smaller hysteresis lets the controller track the fast-changing channel
// more closely; the paper sees TCP throughput grow as the hysteresis
// shrinks from 120 ms to 40 ms, never dropping to zero at any setting.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Figure 22: switching hysteresis sweep (TCP, 15 mph) ===\n\n");
  std::printf("%12s %12s %12s\n", "hysteresis", "Mbit/s", "switches");

  constexpr int kSeeds = 4;
  std::map<std::string, double> counters;
  for (int ms : {120, 80, 40}) {
    double mbps = 0.0;
    double switches = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      DriveConfig cfg;
      cfg.workload = Workload::kTcpDown;
      cfg.mph = 15.0;
      cfg.hysteresis = Time::ms(ms);
      cfg.seed = 61 + static_cast<std::uint64_t>(s) * 997;
      const DriveResult r = run_drive(cfg);
      mbps += r.mean_mbps();
      switches += static_cast<double>(r.switches);
    }
    mbps /= kSeeds;
    switches /= kSeeds;
    std::printf("%9d ms %12.2f %12.0f\n", ms, mbps, switches);
    counters["mbps_h" + std::to_string(ms)] = mbps;
    counters["switches_h" + std::to_string(ms)] = switches;
  }
  std::printf("\npaper: throughput grows as the hysteresis shrinks (1.3 ->\n"
              "~6.4 Mbit/s at the 2 s mark from 120 ms down to 40 ms), and\n"
              "never collapses to zero thanks to prompt switching.\n");

  report("fig22/hysteresis", counters);
  return finish(argc, argv);
}
