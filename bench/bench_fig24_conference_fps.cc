// Figure 24: video-conferencing frame rate CDF (§5.4).
//
// A bidirectional real-time video call: the mobile client downloads the
// remote party's stream and uploads its own. We count downlink frames that
// arrive complete per one-second window and report the fps distribution.
// Paper: ~20 fps at the 85th percentile with the Skype-like stream (30 fps,
// large frames) and ~56 fps with the Hangouts-like stream (60 fps, small
// frames), at both 5 and 15 mph.
#include <cstdio>
#include <memory>

#include "apps/conference.h"
#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "util/stats.h"

using namespace wgtt;

namespace {

std::vector<double> run_call(apps::ConferenceProfile profile, double mph,
                             std::uint64_t seed) {
  net::reset_packet_uids();
  const double lead = 15.0;
  const Time horizon = Time::seconds((lead + 52.5 + lead) / mph_to_mps(mph));

  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = seed;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-lead, 0.0, mph_to_mps(mph));
  sys.add_client(&drive);
  sys.start();

  // Downlink stream: remote party -> mobile.
  apps::ConferenceSource down_src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      profile, net::ClientId{0}, /*downlink=*/true);
  apps::ConferenceSink down_sink(profile, down_src.packets_per_frame());
  sys.client(0).on_downlink = [&](const net::Packet& p) {
    down_sink.on_packet(sys.now(), p);
  };

  // Uplink stream: mobile -> remote party (loads the shared medium the way
  // a real call does; its fps is measured at the server side).
  apps::ConferenceSource up_src(
      sys.sched(),
      [&](net::Packet p) { sys.client(0).send_uplink(std::move(p)); }, profile,
      net::ClientId{0}, /*downlink=*/false);
  apps::ConferenceSink up_sink(profile, up_src.packets_per_frame());
  sys.on_server_uplink = [&](const net::Packet& p) {
    up_sink.on_packet(sys.now(), p);
  };

  down_src.start();
  up_src.start();
  sys.run_until(horizon);
  return down_sink.fps_samples(horizon);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 24: conference fps CDF (WGTT) ===\n\n");
  std::printf("%-22s %8s %8s %8s %8s\n", "profile/speed", "p25", "p50", "p75",
              "p85");

  std::map<std::string, double> counters;
  struct Case {
    const char* name;
    apps::ConferenceProfile profile;
    double mph;
  };
  const Case cases[] = {
      {"skype-like@5mph", apps::skype_like(), 5.0},
      {"skype-like@15mph", apps::skype_like(), 15.0},
      {"hangouts-like@5mph", apps::hangouts_like(), 5.0},
      {"hangouts-like@15mph", apps::hangouts_like(), 15.0},
  };
  for (const auto& c : cases) {
    const auto fps = run_call(c.profile, c.mph, 73);
    std::printf("%-22s %8.1f %8.1f %8.1f %8.1f\n", c.name,
                percentile(fps, 0.25), percentile(fps, 0.50),
                percentile(fps, 0.75), percentile(fps, 0.85));
    counters[std::string(c.name) + "_p85"] = percentile(fps, 0.85);
  }
  std::printf("\npaper: 85th percentile ~20 fps for Skype at 5 and 15 mph;\n"
              "~56 fps for Hangouts (it sends smaller frames at 60 fps).\n");

  benchx::report("fig24/conference_fps", counters);
  return benchx::finish(argc, argv);
}
