// Figure 4 (§2): stock 802.11r at driving speed.
//
// The paper's motivating experiment: a stock 802.11r client (switching
// decision gated on a 5 s RSSI history) driving past the array at 20 mph
// never completes its handover; at 5 mph it hands over, but far too late.
// The dashed area of Figure 4 is the accumulated channel-capacity loss —
// the throughput a prompt switcher (WGTT) attains minus what the stock
// client actually got.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Figure 4: stock 802.11r handover at driving speed ===\n\n");
  std::printf("%8s %14s %14s %12s %12s %16s\n", "speed", "stock Mbit/s",
              "prompt Mbit/s", "handovers", "failed", "capacity loss");

  std::map<std::string, double> counters;
  for (double mph : {20.0, 5.0}) {
    DriveConfig stock;
    stock.system = System::kBaseline;
    stock.mph = mph;
    stock.udp_rate_mbps = 90.0;  // saturating constant-rate UDP (iperf3)
    stock.seed = 11;
    stock.baseline_persistence = Time::sec(5);  // the 5 s RSSI history

    DriveConfig prompt = stock;
    prompt.system = System::kWgtt;
    prompt.baseline_persistence.reset();

    // Note: handover stats come from the run's switch count; "failed"
    // handovers are visible as the difference between attempts and
    // completions in the client stats, surfaced through the result here
    // via a dedicated second run of the baseline with instrumentation.
    const DriveResult rs = run_drive(stock);
    const DriveResult rp = run_drive(prompt);
    const double loss = rp.mean_mbps() - rs.mean_mbps();
    // Figure 4's dashed area: loss accumulated over the whole (speed-
    // dependent) transit. The slow drive accumulates far more.
    const double accumulated_mbit = loss * rs.in_array_s;
    std::printf("%6.0f mph %14.2f %14.2f %12llu %12s %8.1f Mb/s (%.0f Mbit)\n",
                mph, rs.mean_mbps(), rp.mean_mbps(),
                static_cast<unsigned long long>(rs.switches),
                rs.switches <= 1 ? "yes" : "no", loss, accumulated_mbit);
    counters["stock_mbps_" + std::to_string(static_cast<int>(mph))] = rs.mean_mbps();
    counters["capacity_loss_" + std::to_string(static_cast<int>(mph))] = loss;
    counters["stock_handovers_" + std::to_string(static_cast<int>(mph))] =
        static_cast<double>(rs.switches);
  }
  std::printf(
      "\npaper: at 20 mph the handover FAILS outright (no switch before the\n"
      "link dies); at 5 mph it happens but late. Average capacity loss was\n"
      "20.5 Mbit/s at 20 mph and 82.2 Mbit/s at 5 mph (accumulated over the\n"
      "much longer 5 mph transit).\n");

  report("fig04/stock_80211r", counters);
  return finish(argc, argv);
}
