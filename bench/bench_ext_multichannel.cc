// Extension (paper §7, "Multi-channel settings"): single-channel WGTT vs a
// 3-channel frequency-reuse deployment.
//
// The paper argues for a single channel: multi-channel operation avoids
// inter-cell interference but (a) shrinks the spectrum each cell can use of
// the client's moment-to-moment best AP set, (b) kills uplink diversity and
// block-ACK forwarding (off-channel APs cannot overhear the client), and
// (c) forces retune blackouts and off-channel scanning on the client. This
// bench quantifies that design argument, which the paper leaves as
// discussion. Our multi-channel model is *optimistic* (instant CSA-free
// channel-follow, cheap scanning), so the single-channel win shown here is
// a lower bound.
#include <cstdio>

#include "bench/harness.h"
#include "mobility/trajectory.h"
#include "transport/udp.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

double run_reuse(int reuse, double mph, int clients, std::uint64_t seed) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = seed;
  cfg.channel_reuse = reuse;
  scenario::WgttSystem sys(cfg);
  std::vector<std::unique_ptr<mobility::LineDrive>> drives;
  for (int i = 0; i < clients; ++i) {
    drives.push_back(std::make_unique<mobility::LineDrive>(
        -15.0 - 10.0 * i, 0.0, mph_to_mps(mph)));
    sys.add_client(drives.back().get());
  }
  sys.start();
  std::vector<transport::UdpSink> sinks(static_cast<std::size_t>(clients));
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  for (int i = 0; i < clients; ++i) {
    srcs.push_back(std::make_unique<transport::UdpSource>(
        sys.sched(),
        [&sys, i](net::Packet p) {
          p.client = net::ClientId{static_cast<std::uint32_t>(i)};
          sys.server_send(std::move(p));
        },
        transport::UdpSource::Config{
            .rate_mbps = 25.0,
            .client = net::ClientId{static_cast<std::uint32_t>(i)}}));
    sys.client(i).on_downlink = [&sinks, &sys, i](const net::Packet& p) {
      sinks[static_cast<std::size_t>(i)].on_packet(sys.now(), p);
    };
    srcs.back()->start();
  }
  const Time t0 = drives[0]->time_at_x(0.0);
  const Time t1 = drives[0]->time_at_x(52.5);
  sys.run_until(t1);
  double total = 0.0;
  for (auto& s : sinks) total += s.throughput().average_mbps(t0, t1);
  return total / clients;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: single-channel vs 3-channel reuse (WGTT) ===\n\n");
  std::printf("%8s %8s %18s %18s\n", "speed", "clients", "1 channel Mb/s",
              "3 channels Mb/s");

  std::map<std::string, double> counters;
  struct Case {
    double mph;
    int clients;
  };
  for (const Case c : {Case{15.0, 1}, Case{25.0, 1}, Case{15.0, 2}}) {
    double single = 0.0;
    double multi = 0.0;
    for (std::uint64_t s : {77ULL, 1277ULL}) {
      single += run_reuse(1, c.mph, c.clients, s) / 2.0;
      multi += run_reuse(3, c.mph, c.clients, s) / 2.0;
    }
    std::printf("%5.0f mph %8d %18.2f %18.2f\n", c.mph, c.clients, single,
                multi);
    const auto tag = std::to_string(static_cast<int>(c.mph)) + "mph_" +
                     std::to_string(c.clients) + "c";
    counters["single_" + tag] = single;
    counters["multi_" + tag] = multi;
  }
  std::printf(
      "\npaper (§7): 'the nearby APs working on different channels would be\n"
      "unable to forward overheard packets, resulting in a higher uplink\n"
      "packet loss rate', and spectrum efficiency would drop — the paper\n"
      "deploys on a single channel. Our (optimistic, CSA-free) 3-channel\n"
      "model is competitive at low speed with one client but loses at\n"
      "25 mph and with concurrent clients, where the channel-follow lag,\n"
      "scan dead-air and lost overhearing bite — supporting the paper's\n"
      "single-channel choice for the vehicular regime.\n");

  report("ext/multichannel", counters);
  return finish(argc, argv);
}
