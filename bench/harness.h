// Shared experiment harness for the reproduction benches.
//
// Every table and figure in the paper's evaluation reduces to "drive one or
// more clients past the AP array under a traffic workload and measure".
// run_drive() executes that recipe for either system (WGTT or Enhanced
// 802.11r), either transport (bulk TCP, downlink UDP CBR, uplink UDP CBR),
// any speed, any multi-client pattern (Figure 19), and the ablation knobs,
// and returns the measurements the benches print as paper-style rows.
//
// Throughput is averaged over the in-array window (between the first and
// last AP's road coordinates), matching the paper's "while the client
// transits through eight APs".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "obs/metrics.h"
#include "scenario/baseline_system.h"
#include "scenario/wgtt_system.h"
#include "transport/flow_stats.h"

namespace wgtt::benchx {

enum class System { kWgtt, kBaseline };
enum class Workload { kUdpDown, kTcpDown, kUdpUp };
enum class Pattern {
  kSingle,
  kFollowing,
  kParallel,
  kOpposing,
  /// City-scale pattern: clients spread at constant density along the
  /// array, each driving `drive_span_m` from its own start — the client
  /// density (and hence contention per AP) stays flat over the whole
  /// measurement window instead of a convoy sweeping past each AP once.
  kDistributed,
};

struct DriveConfig {
  System system = System::kWgtt;
  Workload workload = Workload::kUdpDown;
  double mph = 15.0;  // 0 = parked mid-array
  double udp_rate_mbps = 30.0;
  std::uint64_t seed = 1;
  int num_clients = 1;
  Pattern pattern = Pattern::kSingle;
  double lead_in_m = 15.0;
  /// Per-client drive distance for Pattern::kDistributed; also sets the
  /// horizon (drive_span_m / speed) so every client stays in-array for the
  /// whole run. Ignored by the other patterns.
  double drive_span_m = 90.0;
  /// Overrides WgttSystemConfig::spatial.use_index (on by default there).
  /// The spatial-equivalence tests force it both ways.
  std::optional<bool> use_spatial_index;
  /// Controller::Config::bounded_fallback — bound the cold-start downlink
  /// fan-out to the client's spatial neighborhood instead of every AP.
  /// Off by default (byte-identity with the seed); the city bench opts in.
  bool bounded_fallback = false;

  // Backhaul cost model (DESIGN.md §10). All default to the seed engine's
  // infinite pipe; the saturation bench and the model tests opt in.
  /// Per-(controller, AP) link rate in Mb/s. Unset/0 = infinite pipe.
  std::optional<double> backhaul_link_rate_mbps;
  /// Per-link byte-queue bound (only read when a finite rate is set).
  std::optional<std::size_t> backhaul_queue_bytes;
  /// Coalesce downlink fan-out into batched deliveries.
  bool backhaul_batching = false;
  /// Batch window override (Backhaul::Config's 500 us default when unset).
  std::optional<Time> backhaul_batch_window;
  /// WgttSystemConfig::use_fanout_pool — single-copy refcounted fan-out.
  /// On by default (byte-identical either way); the equivalence tests force
  /// it both ways.
  bool fanout_pool = true;

  // Knobs (paper parameters / ablations).
  std::optional<Time> selection_window;  // W (Figure 21)
  std::optional<Time> hysteresis;        // Figure 22
  bool ba_forwarding = true;             // ablation
  bool uplink_dedup = true;              // ablation (counts only)
  bool start_from_newest = false;        // queue-management ablation
  core::Controller::SelectionMetric metric =
      core::Controller::SelectionMetric::kMedianEsnr;
  /// Loss applied to the control plane only (stop/start/ack), via the
  /// backhaul's per-message-type fault plans. Exercises the retransmission
  /// and epoch-idempotency machinery without touching the data path.
  /// WGTT system only.
  double control_loss_rate = 0.0;
  /// Control retransmission timeout override (Controller::Config's 30 ms
  /// default when unset). A shorter timeout tightens switch-time tails
  /// under control loss at the cost of more spurious retransmits.
  std::optional<Time> ack_timeout;
  /// Scripted per-AP faults (crash/restart/zombie/partition). Non-empty
  /// auto-enables the controller's heartbeat liveness machinery. WGTT
  /// system only.
  std::vector<scenario::ApFaultScript> ap_faults;
  /// Liveness tuning used by the failover benches (only meaningful when
  /// ap_faults is non-empty or liveness was enabled explicitly).
  std::optional<Time> heartbeat_interval;
  std::optional<int> heartbeat_miss_threshold;

  // Multi-controller domains (DESIGN.md §12). All default to the seed
  // engine's single controller (byte-identical snapshots).
  /// Number of ControllerDomains the AP array is split into. 1 = the
  /// single-controller engine; >1 enables inter-domain handover, the
  /// controller-to-controller heartbeat, and crash failover.
  int num_domains = 1;
  /// Scripted controller crash/restart faults (only read when
  /// num_domains > 1). WGTT system only.
  std::vector<scenario::ControllerFaultScript> controller_faults;
  /// Loss applied to every inter-controller message kind (handover
  /// handshake, heartbeats, ownership gossip, cross-domain forwarding).
  double inter_controller_loss_rate = 0.0;
  std::optional<scenario::GeometryConfig> geometry;  // density sweeps
  std::optional<Time> baseline_persistence;          // stock vs enhanced
  /// Sampling period of the serving-vs-optimal accuracy probe.
  Time accuracy_probe = Time::ms(10);

  /// Collect a MetricsRegistry snapshot (DriveResult::metrics). Implied by
  /// a non-empty metrics_path. WGTT system only (the baseline predates the
  /// metrics layer).
  bool collect_metrics = false;
  /// Write the JSON snapshot here after the run ("" = don't write).
  std::string metrics_path;
  /// System-gauge sampling period while metrics are enabled.
  Time metrics_interval = Time::ms(100);
  /// Record wall-clock engine throughput as the `sim.events_per_sec` gauge
  /// (implies collect_metrics). Off by default: the gauge depends on host
  /// load, so it would break the byte-identical-snapshot guarantee that
  /// jobs=1 and jobs=N runs otherwise share.
  bool record_perf = false;

  // --- observability knobs (DESIGN.md §6.4-§6.6). All off by default; all
  // follow the record_perf rule: wall-clock instruments never enter a
  // snapshot unless explicitly requested. WGTT system only. ---
  /// Attach a sim::EventProfiler for the run and flush the per-event-kind
  /// wall-time breakdown as `sim.profile.*` (implies collect_metrics).
  bool profile = false;
  /// Write the per-client TimelineRecorder series here as JSONL ("" = no
  /// timeline). The tick Timer adds scheduler events, so a timeline-ON run
  /// is a different (still deterministic) event sequence than OFF — same
  /// caveat as the metrics sampler.
  std::string timeline_path;
  /// TimelineRecorder sampling period (only read when timeline_path is
  /// set — present-but-unused is free, the knobs-at-rest contract).
  Time timeline_tick = Time::ms(100);
  /// Attach a trace::Tracer and write its retained ring here as CSV
  /// ("" = none). Attaching only chains observation hooks: no scheduler
  /// events, no RNG draws — byte-identity is preserved.
  std::string trace_csv_path;
  /// Dump a trace::write_postmortem bundle into this directory when
  /// check_invariants reports violations at end of run. The
  /// WGTT_DUMP_ON_VIOLATION environment variable supplies a directory when
  /// this is empty.
  std::string postmortem_dir;
};

struct ClientResult {
  double mbps = 0.0;       // in-array average goodput
  double accuracy = 0.0;   // fraction of probes with serving == optimal AP
  bool tcp_alive = true;   // TCP connection survived the drive
  double tcp_death_s = -1.0;  // when it died (if it did)
  std::uint64_t bytes = 0;
  std::vector<transport::ThroughputRecorder::Point> series;  // 100 ms bins
  /// (time s, ap index) association/serving timeline.
  std::vector<std::pair<double, int>> assoc_timeline;
  /// Uplink loss rate per 500 ms window (Workload::kUdpUp).
  std::vector<double> uplink_loss_windows;
};

struct DriveResult {
  std::vector<ClientResult> clients;
  double duration_s = 0.0;
  double in_array_s = 0.0;
  std::uint64_t switches = 0;
  std::vector<double> switch_protocol_ms;  // per-switch stop->ack latency
  std::vector<double> bitrate_mbps_samples;  // per-A-MPDU PHY rate samples
  std::uint64_t ba_collided = 0;   // BA frames that collided at the client
  std::uint64_t ba_heard = 0;      // BA frames heard at the client
  std::uint64_t retransmissions = 0;
  std::uint64_t mpdus_delivered = 0;
  std::uint64_t delivered_via_forwarded_ba = 0;
  std::uint64_t uplink_dups_dropped = 0;
  std::uint64_t uplink_packets = 0;
  std::uint64_t stale_dropped = 0;
  // Switching-protocol health (WGTT system only).
  std::uint64_t stop_retransmissions = 0;
  std::uint64_t stale_acks_ignored = 0;
  /// Retransmitted stops/starts answered idempotently at the APs, plus
  /// stale control discarded — how hard the epoch guard worked.
  std::uint64_t idempotent_replies = 0;
  /// End-of-run WgttSystem::check_invariants violations (0 = clean).
  std::size_t invariant_violations = 0;
  // AP liveness & failover (zero unless ap_faults/liveness configured).
  std::uint64_t aps_marked_dead = 0;
  std::uint64_t aps_readmitted = 0;
  std::uint64_t forced_failovers = 0;
  std::uint64_t failovers_unserved = 0;
  /// Downlink packets the clients' uid filters dropped (failover replay
  /// overlap that escaped the MAC scoreboard window).
  std::uint64_t downlink_dups_dropped = 0;
  // Multi-controller domains (zero unless num_domains > 1), summed over
  // every controller.
  std::uint64_t handovers_completed = 0;  ///< inter-domain transfers landed
  std::uint64_t handover_retries = 0;
  std::uint64_t handover_aborts = 0;
  std::uint64_t penalty_blocked = 0;
  std::uint64_t controllers_marked_dead = 0;
  std::uint64_t clients_adopted = 0;
  std::uint64_t ownership_yields = 0;
  /// Populated when DriveConfig::collect_metrics (or metrics_path) is set.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  [[nodiscard]] double mean_mbps() const {
    if (clients.empty()) return 0.0;
    double s = 0.0;
    for (const auto& c : clients) s += c.mbps;
    return s / static_cast<double>(clients.size());
  }
  [[nodiscard]] double mean_accuracy() const {
    if (clients.empty()) return 0.0;
    double s = 0.0;
    for (const auto& c : clients) s += c.accuracy;
    return s / static_cast<double>(clients.size());
  }
};

/// Runs one drive-by experiment. Deterministic per config.
DriveResult run_drive(const DriveConfig& config);

/// Fans independent trials across a worker-thread pool.
///
/// Every (seed, parameter-point) trial a bench sweeps is an isolated
/// run_drive(): its own WgttSystem, its own Scheduler, its own RNG stream
/// seeded from the config, and (when requested) its own MetricsRegistry.
/// Nothing is shared between trials, so they parallelise without locks —
/// workers claim trial indices from an atomic cursor and write results
/// into pre-sized slots.
///
/// Determinism contract: results are ordered by submission index, and any
/// aggregation a caller does in that order (as mean_mbps_over_seeds and
/// the converted benches do) is bit-identical regardless of jobs — the
/// same floating-point reductions happen in the same order whether trials
/// ran on one thread or eight. merged_metrics() likewise folds per-trial
/// registries in submission order. DESIGN.md §8 spells out the contract.
///
/// Usage:
///   TrialPool pool({.jobs = jobs});
///   for (auto& cfg : configs) pool.submit(cfg);
///   std::vector<DriveResult> results = pool.run();  // submission order
class TrialPool {
 public:
  struct Options {
    /// Worker threads; 0 = std::thread::hardware_concurrency(), 1 = run
    /// inline on the calling thread (no threads spawned).
    int jobs = 0;
    /// Write one merged `wgtt.metrics.v1` snapshot here after run().
    /// Replaces per-trial DriveConfig::metrics_path, which would have each
    /// trial overwrite the previous trial's file (submit() redirects it —
    /// see there).
    std::string metrics_path;
    /// Record the pool's wall-clock `harness.trials_per_sec` gauge in the
    /// merged registry. Off by default for the same reason as
    /// DriveConfig::record_perf: wall-clock values differ run to run.
    bool record_throughput = false;
  };

  TrialPool() = default;
  explicit TrialPool(Options opts) : opts_(std::move(opts)) {}

  /// Queues one trial; returns its index into run()'s result vector.
  /// A non-empty config.metrics_path is redirected into collect_metrics
  /// (and, if the pool has no metrics_path yet, adopted as the pool's):
  /// trials must not race on one output file, the pool writes the merged
  /// snapshot exactly once after the join.
  std::size_t submit(DriveConfig config);

  /// Runs every submitted trial and returns results in submission order.
  /// Blocks until all workers join. The first exception thrown by a trial
  /// is rethrown here (remaining trials still finish). Clears the queue,
  /// so a pool can be reused for a second batch.
  std::vector<DriveResult> run();

  /// Per-trial registries folded in submission order; null until run(),
  /// and null after it when no trial collected metrics and
  /// record_throughput is off.
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& merged_metrics()
      const {
    return merged_;
  }

  /// Trials completed per wall-clock second in the last run().
  [[nodiscard]] double trials_per_sec() const { return trials_per_sec_; }

  /// Worker count run() will use (Options::jobs resolved against
  /// hardware_concurrency, before clamping to the trial count).
  [[nodiscard]] int jobs() const;

  [[nodiscard]] std::size_t pending() const { return trials_.size(); }

 private:
  Options opts_;
  std::vector<DriveConfig> trials_;
  std::shared_ptr<obs::MetricsRegistry> merged_;
  double trials_per_sec_ = 0.0;
};

/// Bench command-line options shared by the TrialPool-converted benches,
/// parsed (and stripped) ahead of benchmark::Initialize — which aborts on
/// flags it does not know.
struct BenchOptions {
  int jobs = 1;      ///< --jobs N / --jobs=N: TrialPool worker threads.
  bool smoke = false;  ///< --smoke: tiny trial counts for CI smoke runs.
  /// --trace-dir DIR: benches that support it write trace artifacts
  /// (Tracer CSV, timeline JSONL) into this directory for wgtt-trace.
  std::string trace_dir;
  /// --profile: benches that support it run with the event profiler on.
  bool profile = false;
};

/// Extracts --jobs/--smoke/--trace-dir/--profile from argv (removing them,
/// adjusting *argc) and returns what was found. Call before
/// benchx::finish().
BenchOptions parse_bench_options(int* argc, char** argv);

/// Mean over `seeds` runs of the in-array throughput. Seeds chain
/// deterministically from config.seed; `jobs` only changes wall-clock
/// time, never the result (trials are summed in seed order).
double mean_mbps_over_seeds(DriveConfig config, int seeds, int jobs);
double mean_mbps_over_seeds(DriveConfig config, int seeds);

}  // namespace wgtt::benchx
