// Ablation (§3.1.1): median-ESNR selection vs mean-RSSI selection.
//
// RSSI averages power across the band, so it cannot see a frequency-
// selective fade that wipes out a handful of subcarriers; ESNR can. The
// paper's claim is that ESNR-driven selection is what makes millisecond
// switching *accurate*.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Ablation: AP-selection metric (ESNR vs RSSI) ===\n\n");
  std::printf("%-18s %10s %14s %12s\n", "", "Mbit/s", "accuracy (%)",
              "switches");

  std::map<std::string, double> counters;
  const std::pair<core::Controller::SelectionMetric, const char*> metrics[] = {
      {core::Controller::SelectionMetric::kMedianEsnr, "median ESNR"},
      {core::Controller::SelectionMetric::kMeanRssi, "RSSI"},
  };
  // Two channel regimes: the testbed default, and a strongly frequency-
  // selective one (long delay spread, no line of sight) where RSSI's
  // blindness to per-subcarrier fades costs real throughput — the regime
  // the paper's ESNR argument (after Halperin et al.) is about.
  for (bool selective : {false, true}) {
    std::printf("%s channel:\n",
                selective ? "strongly frequency-selective" : "testbed default");
    for (const auto& [metric, name] : metrics) {
      double mbps = 0.0;
      double acc = 0.0;
      double switches = 0.0;
      constexpr int kSeeds = 3;
      for (int s = 0; s < kSeeds; ++s) {
        DriveConfig cfg;
        cfg.mph = 15.0;
        cfg.udp_rate_mbps = 30.0;
        cfg.seed = 103 + static_cast<std::uint64_t>(s) * 1000;
        cfg.metric = metric;
        if (selective) {
          scenario::GeometryConfig geo;
          geo.link.fading.delay_spread_ns = 450.0;
          geo.link.fading.rician_k_db = -20.0;
          cfg.geometry = geo;
        }
        const DriveResult r = run_drive(cfg);
        mbps += r.mean_mbps();
        acc += r.mean_accuracy() * 100.0;
        switches += static_cast<double>(r.switches);
      }
      std::printf("  %-18s %10.2f %14.1f %12.0f\n", name, mbps / kSeeds,
                  acc / kSeeds, switches / kSeeds);
      counters[std::string(selective ? "sel_" : "def_") + "mbps_" +
               (metric == core::Controller::SelectionMetric::kMedianEsnr
                    ? "esnr"
                    : "rssi")] = mbps / kSeeds;
    }
  }
  std::printf(
      "\nfinding: with the same window-median machinery, the two metrics\n"
      "perform within noise in this simulator — at switch timescales\n"
      "(hysteresis + ~17 ms protocol) both medians track the large-scale\n"
      "ranking, and our per-MPDU delivery model has no RSSI measurement\n"
      "error. ESNR's decisive role here is delivery prediction for rate\n"
      "control (the EsnrRateSelector), matching the paper's Table 2\n"
      "observation that switching decisions, not PHY-rate tricks, carry\n"
      "the gain. See EXPERIMENTS.md for discussion.\n");

  report("abl/selection_metric", counters);
  return finish(argc, argv);
}
