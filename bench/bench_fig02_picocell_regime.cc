// Figure 2: THE VEHICULAR PICOCELL REGIME.
//
// Reproduces the paper's motivating observation: as a client drives past
// the array at 15 mph, per-AP ESNR fades on two timescales (second-scale
// distance fading + millisecond fast fading), and the AP best able to
// deliver changes every few milliseconds.
//
// Prints: a decimated 3-AP ESNR trace, and the best-AP change statistics.
#include <cstdio>

#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/testbed.h"

using namespace wgtt;

int main(int argc, char** argv) {
  scenario::GeometryConfig geo;
  geo.seed = 2;
  scenario::TestbedGeometry testbed(geo);
  mobility::LineDrive drive(0.0, 0.0, mph_to_mps(15.0));
  testbed.add_client(&drive);

  std::printf("=== Figure 2: the vehicular picocell regime (15 mph) ===\n\n");
  std::printf("ESNR (dB) of APs 2-4 while the client crosses their cells\n");
  std::printf("%8s %8s %8s %8s %8s\n", "t (s)", "x (m)", "AP2", "AP3", "AP4");
  for (int ms = 2200; ms <= 4400; ms += 100) {
    const Time t = Time::ms(ms);
    std::printf("%8.2f %8.1f %8.1f %8.1f %8.1f\n", t.to_seconds(),
                testbed.client_position(0, t).x, testbed.esnr_db(2, 0, t),
                testbed.esnr_db(3, 0, t), testbed.esnr_db(4, 0, t));
  }

  // Best-AP flip statistics at 1 ms resolution across the whole array.
  int changes = 0;
  int last = -1;
  std::vector<double> dwell_ms;
  double dwell = 0.0;
  const double total_ms = 52.5 / mph_to_mps(15.0) * 1000.0;
  for (double ms = 0.0; ms < total_ms; ms += 1.0) {
    const int best = testbed.optimal_ap(0, Time::millis(ms));
    if (best != last && last != -1) {
      ++changes;
      dwell_ms.push_back(dwell);
      dwell = 0.0;
    }
    dwell += 1.0;
    last = best;
  }
  double mean_dwell = 0.0;
  for (double d : dwell_ms) mean_dwell += d;
  if (!dwell_ms.empty()) mean_dwell /= static_cast<double>(dwell_ms.size());

  std::printf("\nbest-AP changes: %d over %.1f s (every %.1f ms on average)\n",
              changes, total_ms / 1000.0, mean_dwell);
  std::printf("paper: the best choice of AP changes at millisecond "
              "timescales; coherence time ~2-3 ms at 2.4 GHz\n");

  benchx::report("fig02/best_ap_dynamics",
                 {{"changes_per_s", changes / (total_ms / 1000.0)},
                  {"mean_dwell_ms", mean_dwell}});
  return benchx::finish(argc, argv);
}
