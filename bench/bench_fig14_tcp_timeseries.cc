// Figure 14: TCP throughput timeline + AP association timeline during one
// 15 mph drive, WGTT vs Enhanced 802.11r.
//
// WGTT switches ~5x/s and keeps the flow alive across the whole array; the
// baseline rides each AP until the link dies, eventually hitting an RTO
// cascade that kills the TCP connection mid-drive.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {
void print_timeline(const char* name, const ClientResult& c, double horizon_s) {
  std::printf("%s throughput (500 ms bins, Mbit/s):\n  ", name);
  double acc = 0.0;
  int k = 0;
  for (const auto& pt : c.series) {
    acc += pt.mbps;
    if (++k == 5) {
      std::printf("%5.1f", acc / 5.0);
      acc = 0.0;
      k = 0;
    }
  }
  std::printf("\n%s association timeline (time s -> AP):\n  ", name);
  int printed = 0;
  for (const auto& [t, ap] : c.assoc_timeline) {
    if (t > horizon_s) break;
    std::printf("%.1f->AP%d  ", t, ap);
    if (++printed % 8 == 0) std::printf("\n  ");
  }
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  DriveConfig cfg;
  cfg.workload = Workload::kTcpDown;
  cfg.mph = 15.0;
  cfg.seed = 23;

  cfg.system = System::kWgtt;
  const DriveResult w = run_drive(cfg);
  cfg.system = System::kBaseline;
  const DriveResult b = run_drive(cfg);

  std::printf("=== Figure 14: TCP during a single 15 mph drive ===\n\n");
  print_timeline("WGTT", w.clients[0], w.duration_s);
  std::printf("  switches: %llu (%.1f per second)\n\n",
              static_cast<unsigned long long>(w.switches),
              static_cast<double>(w.switches) / w.duration_s);
  print_timeline("Enhanced 802.11r", b.clients[0], b.duration_s);
  if (!b.clients[0].tcp_alive) {
    std::printf("  baseline TCP connection DIED at t=%.2f s (RTO cascade)\n",
                b.clients[0].tcp_death_s);
  } else {
    std::printf("  baseline TCP survived this seed (died in the paper's run)\n");
  }
  std::printf("\nWGTT avg %.2f Mbit/s vs baseline %.2f Mbit/s in-array\n",
              w.mean_mbps(), b.mean_mbps());
  std::printf("paper: WGTT ~5 Mbit/s stable with ~5 switches/s; baseline TCP\n"
              "throughput hits zero and the connection breaks mid-drive.\n");

  report("fig14/tcp_timeseries",
         {{"wgtt_mbps", w.mean_mbps()},
          {"base_mbps", b.mean_mbps()},
          {"wgtt_switch_per_s", static_cast<double>(w.switches) / w.duration_s},
          {"base_tcp_alive", b.clients[0].tcp_alive ? 1.0 : 0.0}});
  return finish(argc, argv);
}
