// Parallel-engine performance: strong-scaling sweep of one city-scale run
// over worker counts, plus the batched SIMD-friendly channel kernel
// (DESIGN.md §11). Three jobs:
//
//   1. Strong scaling: the SAME 256-AP parallel city (16 RF-isolated
//      corridors, domain graph fixed by the scenario) executed with 1, 2,
//      4 and 8 workers. Reported per point: events/sec and speedup vs one
//      worker. The sweep hard-fails if any worker count changes the merged
//      wgtt.metrics.v1 snapshot by a single byte, if a lookahead violation
//      is counted, or if a switching-protocol invariant breaks — the knob
//      must buy wall-clock time and nothing else. (Speedup is only
//      meaningful on a multi-core host; on a single-core CI box the lockstep
//      barriers make extra workers pure overhead, so the gate is correctness,
//      not a speedup floor.)
//
//   2. csi_batch(): the SoA channel kernel vs per-call csi() on the same
//      drive-shaped sample stream, with bit-equality enforced sample by
//      sample before any timing is believed.
//
// The shared reporter stamps an `ndebug` counter into the JSON, so
// BENCH_parallel.json records whether the numbers came from an optimized
// build (docs/BENCHMARKS.md notes the build type per file).
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"
#include "channel/fading.h"
#include "scenario/parallel_city.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace wgtt;
using benchx::BenchOptions;
using benchx::parse_bench_options;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  std::map<std::string, double> counters;

  std::printf("=== Parallel engine: strong scaling and the batched channel kernel ===\n\n");

  // --- 1. strong scaling over worker counts ---------------------------------
  {
    scenario::ParallelCityConfig cfg;
    if (opts.smoke) {
      cfg.corridors = 4;
      cfg.aps_per_corridor = 4;
      cfg.clients_per_corridor = 1;
      cfg.drive_span_m = 10.0;
    } else {
      // The 256-AP city: 16 corridors x 16 APs, one driving client each.
      cfg.corridors = 16;
      cfg.aps_per_corridor = 16;
      cfg.clients_per_corridor = 1;
      cfg.drive_span_m = 20.0;
    }
    cfg.udp_rate_mbps = 4.0;
    cfg.seed = 5;
    cfg.collect_metrics = true;  // merged snapshot = the identity oracle

    std::printf("strong scaling (%d corridors x %d APs = %d APs, %d clients, %.0f m drive)\n",
                cfg.corridors, cfg.aps_per_corridor,
                cfg.corridors * cfg.aps_per_corridor, cfg.corridors * cfg.clients_per_corridor,
                cfg.drive_span_m);

    std::string ref_json;
    double eps1 = 0.0;
    for (const int workers : {1, 2, 4, 8}) {
      cfg.workers = workers;
      const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
      if (r.lookahead_violations != 0) {
        std::printf("  FAIL: %llu lookahead violations at %d workers\n",
                    static_cast<unsigned long long>(r.lookahead_violations),
                    workers);
        return 1;
      }
      if (r.invariant_violations != 0) {
        std::printf("  FAIL: %zu invariant violations at %d workers\n",
                    r.invariant_violations, workers);
        return 1;
      }
      const std::string json = r.metrics->to_json();
      if (workers == 1) {
        ref_json = json;
        eps1 = r.events_per_sec;
      } else if (json != ref_json) {
        std::printf("  FAIL: metrics snapshot at %d workers differs from 1 worker\n",
                    workers);
        return 1;
      }
      const double speedup = eps1 > 0.0 ? r.events_per_sec / eps1 : 0.0;
      std::printf("  %d workers (%d used): %8.0f k events/s  %5.2fx vs 1, "
                  "%llu rounds, %llu msgs, %.1f Mbps mean\n",
                  workers, r.workers_used, r.events_per_sec / 1e3, speedup,
                  static_cast<unsigned long long>(r.rounds),
                  static_cast<unsigned long long>(r.messages), r.mean_mbps);
      counters["parallel_eps_w" + std::to_string(workers)] = r.events_per_sec;
      counters["parallel_speedup_w" + std::to_string(workers)] = speedup;
      if (workers == 1) {
        counters["parallel_rounds"] = static_cast<double>(r.rounds);
        counters["parallel_messages"] = static_cast<double>(r.messages);
        counters["parallel_events"] = static_cast<double>(r.events_executed);
        counters["parallel_mean_mbps"] = r.mean_mbps;
      }
    }
    std::printf("  byte-identical snapshots across all worker counts: yes\n\n");
  }

  // --- 2. batched channel kernel ---------------------------------------------
  {
    Rng rng(17);
    channel::TappedDelayChannel::Config ccfg;
    const channel::TappedDelayChannel chan(ccfg, rng);
    const int n = opts.smoke ? 20'000 : 100'000;

    // Drive-shaped sample stream: one (AP, client) link evaluated along a
    // drive past the AP — exactly the lazy-link sampling pattern.
    std::vector<channel::Vec2> pos(static_cast<std::size_t>(n));
    std::vector<Time> when(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pos[static_cast<std::size_t>(i)] = {-40.0 + i * 0.0009, 0.3};
      when[static_cast<std::size_t>(i)] = Time::micros(i * 120.0);
    }
    std::vector<channel::CsiSnapshot> scalar_out(static_cast<std::size_t>(n));
    std::vector<channel::CsiSnapshot> batch_out(static_cast<std::size_t>(n));

    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      scalar_out[static_cast<std::size_t>(i)] =
          chan.csi(pos[static_cast<std::size_t>(i)],
                   when[static_cast<std::size_t>(i)]);
    }
    const double scalar_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    chan.csi_batch(pos.data(), when.data(), static_cast<std::size_t>(n),
                   batch_out.data());
    const double batch_s = seconds_since(t0);

    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < kNumSubcarriers; ++k) {
        const auto a = scalar_out[static_cast<std::size_t>(i)]
                           .gains[static_cast<std::size_t>(k)];
        const auto b = batch_out[static_cast<std::size_t>(i)]
                           .gains[static_cast<std::size_t>(k)];
        if (a != b) {
          std::printf("  FAIL: csi_batch diverges from csi at sample %d "
                      "subcarrier %d\n", i, k);
          return 1;
        }
      }
    }

    const double scalar_ns = scalar_s / n * 1e9;
    const double batch_ns = batch_s / n * 1e9;
    std::printf("csi kernel (%d samples, %d taps x 56 subcarriers, bit-equality checked)\n",
                n, chan.num_taps());
    std::printf("  per-call csi()   %8.1f ns/snapshot\n", scalar_ns);
    std::printf("  csi_batch()      %8.1f ns/snapshot  (%.2fx)\n\n", batch_ns,
                scalar_ns / batch_ns);
    counters["csi_scalar_ns"] = scalar_ns;
    counters["csi_batch_ns"] = batch_ns;
    counters["csi_batch_speedup"] = scalar_ns / batch_ns;
  }

  benchx::report("perf/parallel", counters);
  return benchx::finish(argc, argv);
}
