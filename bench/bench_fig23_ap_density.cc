// Figure 23: UDP throughput in dense vs sparse parts of the deployment.
//
// Dense: the testbed's 7.5 m spacing. Sparse: twice the spacing over the
// same road length. Denser cells mean more overlap — more uplink diversity
// and a better best-AP at every instant. The paper: ~9.3 Mbit/s dense vs
// ~6.7 Mbit/s sparse, consistent across speeds.
//
// The dense/sparse pair at each speed runs as independent TrialPool
// trials; --smoke restricts the sweep to 15 mph for the bench-smoke CTest
// target.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const std::vector<double> speeds =
      opts.smoke ? std::vector<double>{15.0}
                 : std::vector<double>{5.0, 15.0, 25.0};

  std::printf("=== Figure 23: AP density (UDP, WGTT) ===\n\n");
  std::printf("%8s %14s %14s\n", "speed", "dense Mb/s", "sparse Mb/s");

  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  for (double mph : speeds) {
    DriveConfig dense;
    dense.mph = mph;
    dense.udp_rate_mbps = 40.0;
    dense.seed = 67;

    DriveConfig sparse = dense;
    scenario::GeometryConfig geo;
    geo.num_aps = 4;
    geo.ap_spacing_m = 15.0;  // same 52.5 m road span, half the APs
    sparse.geometry = geo;

    pool.submit(dense);
    pool.submit(sparse);
  }
  const std::vector<DriveResult> results = pool.run();

  std::map<std::string, double> counters;
  std::size_t idx = 0;
  for (double mph : speeds) {
    const double d = results[idx++].mean_mbps();
    const double s = results[idx++].mean_mbps();
    std::printf("%5.0f mph %14.2f %14.2f\n", mph, d, s);
    const auto tag = std::to_string(static_cast<int>(mph));
    counters["dense_" + tag] = d;
    counters["sparse_" + tag] = s;
  }
  std::printf("\npaper: ~9.3 Mbit/s in the dense region vs ~6.7 Mbit/s in\n"
              "the sparse region, consistently across driving speeds.\n");

  report("fig23/ap_density", counters);
  return finish(argc, argv);
}
