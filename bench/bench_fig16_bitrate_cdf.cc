// Figure 16: CDF of the link bit rate used on the air during a 15 mph
// drive. Because WGTT always transmits on the AP with the best
// instantaneous channel, its rate-controller sits high in the MCS table;
// the baseline, stuck on deteriorating links, falls down the table. The
// paper reports a 90th percentile of ~70 Mbit/s for WGTT, ~30 Mbit/s above
// the baseline.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"
#include "util/stats.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  DriveConfig cfg;
  cfg.mph = 15.0;
  cfg.udp_rate_mbps = 60.0;  // keep the radio busy
  cfg.seed = 31;

  cfg.system = System::kWgtt;
  const DriveResult w = run_drive(cfg);
  cfg.system = System::kBaseline;
  const DriveResult b = run_drive(cfg);

  std::printf("=== Figure 16: link bit-rate CDF at 15 mph ===\n\n");
  std::printf("%12s %12s %12s\n", "percentile", "WGTT Mb/s", "base Mb/s");
  std::map<std::string, double> counters;
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    const double wq = percentile(w.bitrate_mbps_samples, q);
    const double bq = b.bitrate_mbps_samples.empty()
                          ? 0.0
                          : percentile(b.bitrate_mbps_samples, q);
    std::printf("%11.0f%% %12.1f %12.1f\n", q * 100.0, wq, bq);
    counters["wgtt_p" + std::to_string(static_cast<int>(q * 100))] = wq;
    counters["base_p" + std::to_string(static_cast<int>(q * 100))] = bq;
  }
  std::printf("\npaper: WGTT 90th percentile ~70 Mbit/s, ~30 Mbit/s above\n"
              "Enhanced 802.11r.\n");

  report("fig16/bitrate_cdf", counters);
  return finish(argc, argv);
}
