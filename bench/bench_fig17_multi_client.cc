// Figure 17: average per-client downlink throughput with 1-3 concurrent
// clients, all at 15 mph. WGTT's gap over the baseline grows slightly with
// client count (uplink diversity keeps its loss rate low while contention
// and mobility hurt the baseline more).
//
// The 12 (clients, workload, system) cells are independent trials, fanned
// across --jobs TrialPool workers and printed in submission order.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const int max_clients = opts.smoke ? 1 : 3;

  std::printf("=== Figure 17: per-client throughput vs number of clients ===\n\n");
  std::printf("%8s %12s %12s %8s %12s %12s %8s\n", "clients", "WGTT tcp",
              "base tcp", "ratio", "WGTT udp", "base udp", "ratio");

  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  for (int clients = 1; clients <= max_clients; ++clients) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.num_clients = clients;
    cfg.udp_rate_mbps = 20.0;  // per client
    cfg.seed = 41;
    for (const Workload wl : {Workload::kTcpDown, Workload::kUdpDown}) {
      for (const System sys : {System::kWgtt, System::kBaseline}) {
        cfg.workload = wl;
        cfg.system = sys;
        DriveConfig cell = cfg;
        if (!opts.trace_dir.empty() && clients == 1 && sys == System::kWgtt &&
            wl == Workload::kTcpDown) {
          // Export the single-client WGTT TCP cell for wgtt-trace: the
          // Tracer ring as CSV plus the per-client timeline (with TCP
          // cwnd/srtt, since this is the TCP workload).
          cell.trace_csv_path = opts.trace_dir + "/fig17_trace.csv";
          cell.timeline_path = opts.trace_dir + "/fig17_timeline.jsonl";
        }
        pool.submit(std::move(cell));
      }
    }
  }
  const std::vector<DriveResult> results = pool.run();

  std::map<std::string, double> counters;
  std::size_t idx = 0;
  for (int clients = 1; clients <= max_clients; ++clients) {
    const double wt = results[idx++].mean_mbps();
    const double bt = results[idx++].mean_mbps();
    const double wu = results[idx++].mean_mbps();
    const double bu = results[idx++].mean_mbps();

    std::printf("%8d %12.2f %12.2f %7.1fx %12.2f %12.2f %7.1fx\n", clients, wt,
                bt, bt > 0 ? wt / bt : 0.0, wu, bu, bu > 0 ? wu / bu : 0.0);
    const auto tag = std::to_string(clients);
    counters["wgtt_tcp_" + tag] = wt;
    counters["base_tcp_" + tag] = bt;
    counters["wgtt_udp_" + tag] = wu;
    counters["base_udp_" + tag] = bu;
  }
  std::printf("\npaper: single client 5.3 / 8.2 Mbit/s (2.5x / 2.1x over the\n"
              "baseline); the gap grows to 2.6x / 2.4x at three clients.\n");

  report("fig17/multi_client", counters);
  return finish(argc, argv);
}
