// Figure 17: average per-client downlink throughput with 1-3 concurrent
// clients, all at 15 mph. WGTT's gap over the baseline grows slightly with
// client count (uplink diversity keeps its loss rate low while contention
// and mobility hurt the baseline more).
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Figure 17: per-client throughput vs number of clients ===\n\n");
  std::printf("%8s %12s %12s %8s %12s %12s %8s\n", "clients", "WGTT tcp",
              "base tcp", "ratio", "WGTT udp", "base udp", "ratio");

  std::map<std::string, double> counters;
  for (int clients = 1; clients <= 3; ++clients) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.num_clients = clients;
    cfg.udp_rate_mbps = 20.0;  // per client
    cfg.seed = 41;

    cfg.workload = Workload::kTcpDown;
    cfg.system = System::kWgtt;
    const double wt = run_drive(cfg).mean_mbps();
    cfg.system = System::kBaseline;
    const double bt = run_drive(cfg).mean_mbps();

    cfg.workload = Workload::kUdpDown;
    cfg.system = System::kWgtt;
    const double wu = run_drive(cfg).mean_mbps();
    cfg.system = System::kBaseline;
    const double bu = run_drive(cfg).mean_mbps();

    std::printf("%8d %12.2f %12.2f %7.1fx %12.2f %12.2f %7.1fx\n", clients, wt,
                bt, bt > 0 ? wt / bt : 0.0, wu, bu, bu > 0 ? wu / bu : 0.0);
    const auto tag = std::to_string(clients);
    counters["wgtt_tcp_" + tag] = wt;
    counters["base_tcp_" + tag] = bt;
    counters["wgtt_udp_" + tag] = wu;
    counters["base_udp_" + tag] = bu;
  }
  std::printf("\npaper: single client 5.3 / 8.2 Mbit/s (2.5x / 2.1x over the\n"
              "baseline); the gap grows to 2.6x / 2.4x at three clients.\n");

  report("fig17/multi_client", counters);
  return finish(argc, argv);
}
