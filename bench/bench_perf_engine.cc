// Engine microbenchmarks for the two hot-path optimizations and the
// TrialPool fan-out (not a paper figure — a regression guard for the
// simulator itself).
//
// Three sections:
//   1. streaming median vs the seed's sort-per-sample recomputation, on a
//      synthetic CSI stream shaped like a drive-by (10 ms window, sample
//      every 100 us);
//   2. PacketPool + CyclicQueue put/take churn vs the container defaults;
//   3. TrialPool scaling: the same batch of drive trials at --jobs 1 and
//      at --jobs N, reporting trials/sec and the speedup. On a multicore
//      host the speedup at --jobs 4 should be >= 2x; on a single-core CI
//      box it is honestly ~1x (the pool cannot conjure cores).
//
// All numbers also land as google-benchmark counters (perf/engine).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "ap/cyclic_queue.h"
#include "bench/harness.h"
#include "bench/report.h"
#include "core/streaming_median.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "util/stats.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic ESNR-like stream (no libc rand: identical on every host).
double synth_esnr(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return 10.0 + static_cast<double>((state >> 33) % 2500) / 100.0;  // 10-35 dB
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const int samples = opts.smoke ? 20'000 : 200'000;
  std::map<std::string, double> counters;

  std::printf("=== Engine performance: hot paths and trial fan-out ===\n\n");

  // --- 1. median maintenance --------------------------------------------------
  {
    const Time window = Time::ms(10);
    const Time step = Time::us(100);  // ~100 live samples, like a busy link

    std::uint64_t state = 7;
    core::StreamingMedian sm(window);
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    Time now = Time::zero();
    for (int i = 0; i < samples; ++i, now += step) {
      sm.add(now, synth_esnr(state));
      sink += sm.lower_median(now).value_or(0.0);
    }
    const double stream_s = seconds_since(t0);

    // The seed's approach: keep the window in a deque, copy + nth_element
    // on every query.
    state = 7;
    std::deque<std::pair<Time, double>> win;
    double sink2 = 0.0;
    t0 = std::chrono::steady_clock::now();
    now = Time::zero();
    for (int i = 0; i < samples; ++i, now += step) {
      win.emplace_back(now, synth_esnr(state));
      while (!win.empty() && win.front().first <= now - window) win.pop_front();
      std::vector<double> xs;
      xs.reserve(win.size());
      for (const auto& [w, v] : win) xs.push_back(v);
      sink2 += lower_median(xs);
    }
    const double sort_s = seconds_since(t0);

    if (sink != sink2) {
      std::printf("median MISMATCH: streaming %.6f vs sort %.6f\n", sink, sink2);
      return 1;
    }
    const double stream_mps = samples / stream_s / 1e6;
    const double sort_mps = samples / sort_s / 1e6;
    std::printf("median maintenance (window %.0f ms, %d samples)\n",
                window.to_millis(), samples);
    std::printf("  streaming dual-heap  %8.2f Msamples/s\n", stream_mps);
    std::printf("  sort-per-sample      %8.2f Msamples/s  (%.1fx slower)\n\n",
                sort_mps, stream_mps / sort_mps);
    counters["median_stream_msps"] = stream_mps;
    counters["median_sort_msps"] = sort_mps;
    counters["median_speedup"] = stream_mps / sort_mps;
  }

  // --- 2. packet pool + cyclic queue churn -------------------------------------
  {
    net::PacketPool pool;
    ap::CyclicQueue q(&pool);
    std::uint64_t state = 3;
    const int ops = samples;
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t taken = 0;
    for (int i = 0; i < ops; ++i) {
      net::Packet p = net::make_packet();
      p.ip_id = static_cast<std::uint16_t>(state >> 40);
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      q.put(static_cast<std::uint16_t>(i & 0xfff), std::move(p));
      if ((state & 3) == 0) {
        if (auto got = q.take(static_cast<std::uint16_t>(i & 0xfff))) ++taken;
      }
    }
    q.clear();
    const double churn_s = seconds_since(t0);
    const double churn_mops = ops / churn_s / 1e6;
    std::printf("cyclic queue churn: %8.2f Mops/s (%llu takes, peak pool %zu pkts)\n\n",
                churn_mops, static_cast<unsigned long long>(taken),
                pool.peak_in_use());
    counters["queue_churn_mops"] = churn_mops;
    counters["pool_peak_packets"] = static_cast<double>(pool.peak_in_use());
  }

  // --- 3. trial-pool scaling ---------------------------------------------------
  {
    const int trials = opts.smoke ? 2 : 8;
    const int jobs_n = opts.jobs > 1 ? opts.jobs : 4;
    auto make_batch = [&](TrialPool& pool) {
      DriveConfig cfg;
      cfg.mph = 25.0;
      cfg.udp_rate_mbps = 20.0;
      cfg.seed = 5;
      for (int i = 0; i < trials; ++i) {
        cfg.seed = cfg.seed * 7919 + 13;
        pool.submit(cfg);
      }
    };

    TrialPool seq(TrialPool::Options{.jobs = 1});
    make_batch(seq);
    const auto seq_results = seq.run();

    TrialPool par(TrialPool::Options{.jobs = jobs_n});
    make_batch(par);
    const auto par_results = par.run();

    // The determinism contract, checked here for free: identical results.
    double seq_sum = 0.0, par_sum = 0.0;
    for (const auto& r : seq_results) seq_sum += r.mean_mbps();
    for (const auto& r : par_results) par_sum += r.mean_mbps();
    if (seq_sum != par_sum) {
      std::printf("trial-pool MISMATCH: jobs=1 %.9f vs jobs=%d %.9f\n", seq_sum,
                  jobs_n, par_sum);
      return 1;
    }

    const double speedup = par.trials_per_sec() / seq.trials_per_sec();
    std::printf("trial-pool scaling (%d drive trials)\n", trials);
    std::printf("  --jobs 1   %8.3f trials/s\n", seq.trials_per_sec());
    std::printf("  --jobs %-3d %8.3f trials/s  (%.2fx)\n", jobs_n,
                par.trials_per_sec(), speedup);
    std::printf("  results bit-identical across job counts: yes\n");
    counters["trials_per_sec_jobs1"] = seq.trials_per_sec();
    counters["trials_per_sec_jobsN"] = par.trials_per_sec();
    counters["trial_pool_speedup"] = speedup;
    counters["jobs_n"] = jobs_n;
  }

  report("perf/engine", counters);
  return finish(argc, argv);
}
