// Engine microbenchmarks for the hot-path optimizations and the TrialPool
// fan-out (not a paper figure — a regression guard for the simulator
// itself).
//
// Sections:
//   1. streaming median vs the seed's sort-per-sample recomputation, on a
//      synthetic CSI stream shaped like a drive-by (10 ms window, sample
//      every 100 us);
//   2. scheduler churn: a schedule/cancel/fire mix mirroring Timer usage
//      (RTO and switch-ack restarts), on the inline-callback d-ary-heap
//      engine vs the seed's priority_queue + std::function + tombstone-set
//      engine (reproduced verbatim below);
//   3. CSI measure(): LinkChannel::measure ns/op, with a global allocation
//      counter asserting the fixed-size path performs ZERO steady-state
//      heap allocations (the bench fails otherwise);
//   4. PacketPool + CyclicQueue put/take churn;
//   5. end-to-end engine throughput: one run_drive with record_perf, the
//      `sim.events_per_sec` gauge (committed to BENCH_engine.json so the
//      benchmark trajectory has a baseline);
//   6. TrialPool scaling: the same batch of drive trials at --jobs 1 and
//      at --jobs N, reporting trials/sec and the speedup. On a multicore
//      host the speedup at --jobs 4 should be >= 2x; on a single-core CI
//      box it is honestly ~1x (the pool cannot conjure cores);
//   7. event-kind profiler: a profiled drive's per-category wall-time
//      breakdown (from the sim.profile.* snapshot), asserting the
//      categories are populated, the breakdown covers >= 90% of the run's
//      wall time, and the enabled profiler costs < 5% of engine
//      throughput (best-of-N events/sec, profiler off vs on). Gated
//      behind --profile so un-flagged runs stay comparable to older
//      baselines; CI exercises it via the bench-smoke-profile target.
//
// All numbers also land as google-benchmark counters (perf/engine).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_set>
#include <vector>

#include "ap/cyclic_queue.h"
#include "bench/harness.h"
#include "bench/report.h"
#include "channel/link_channel.h"
#include "core/streaming_median.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"

// --- global allocation counter (section 3's zero-allocation assertion) -------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic ESNR-like stream (no libc rand: identical on every host).
double synth_esnr(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return 10.0 + static_cast<double>((state >> 33) % 2500) / 100.0;  // 10-35 dB
}

// The seed event engine, reproduced verbatim as the churn baseline:
// std::priority_queue of owning entries (std::function copied off top() on
// every pop) and an unordered_set tombstone per cancel.
class LegacyScheduler {
 public:
  using Id = std::uint64_t;

  [[nodiscard]] Time now() const { return now_; }

  Id schedule_at(Time when, std::function<void()> fn) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, std::move(fn)});
    return seq;
  }

  void cancel(Id id) { cancelled_.insert(id); }

  bool step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = e.when;
      e.fn();
      return true;
    }
    return false;
  }

  void run_until(Time limit) {
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      if (cancelled_.contains(top.seq)) {
        cancelled_.erase(top.seq);
        heap_.pop();
        continue;
      }
      if (top.when > limit) break;
      step();
    }
    if (now_ < limit) now_ = limit;
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
};

/// Timer-shaped churn: a bank of restartable timeouts; most get restarted
/// before firing (the 30 ms switch-ack and TCP RTO pattern), the rest fire
/// when the clock is pumped. Identical op sequence for both engines, so the
/// fire order (and the checksum) must match — a free cross-check of the
/// (when, seq) FIFO contract.
template <typename Sched, typename Id>
std::uint64_t churn_workload(Sched& s, int ops, std::uint64_t* checksum) {
  constexpr int kTimers = 256;
  std::vector<Id> pending(kTimers, Id{});
  std::vector<char> armed(kTimers, 0);
  std::uint64_t fired = 0;
  std::uint64_t state = 9;
  for (int i = 0; i < ops; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const int k = static_cast<int>((state >> 33) % kTimers);
    if (armed[static_cast<std::size_t>(k)]) s.cancel(pending[static_cast<std::size_t>(k)]);
    armed[static_cast<std::size_t>(k)] = 1;
    const Time delay = Time::us(static_cast<std::int64_t>(30 + ((state >> 40) % 1000)));
    pending[static_cast<std::size_t>(k)] =
        s.schedule_at(s.now() + delay, [&armed, &fired, checksum, k] {
          armed[static_cast<std::size_t>(k)] = 0;
          ++fired;
          *checksum = *checksum * 31 + static_cast<std::uint64_t>(k);
        });
    if ((i & 7) == 0) s.run_until(s.now() + Time::us(120));
  }
  s.run_until(s.now() + Time::ms(10));  // drain most of what's left
  return fired;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const int samples = opts.smoke ? 20'000 : 200'000;
  std::map<std::string, double> counters;

  std::printf("=== Engine performance: hot paths and trial fan-out ===\n\n");

  // --- 1. median maintenance --------------------------------------------------
  {
    const Time window = Time::ms(10);
    const Time step = Time::us(100);  // ~100 live samples, like a busy link

    std::uint64_t state = 7;
    core::StreamingMedian sm(window);
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    Time now = Time::zero();
    for (int i = 0; i < samples; ++i, now += step) {
      sm.add(now, synth_esnr(state));
      sink += sm.lower_median(now).value_or(0.0);
    }
    const double stream_s = seconds_since(t0);

    // The seed's approach: keep the window in a deque, copy + nth_element
    // on every query.
    state = 7;
    std::deque<std::pair<Time, double>> win;
    double sink2 = 0.0;
    t0 = std::chrono::steady_clock::now();
    now = Time::zero();
    for (int i = 0; i < samples; ++i, now += step) {
      win.emplace_back(now, synth_esnr(state));
      while (!win.empty() && win.front().first <= now - window) win.pop_front();
      std::vector<double> xs;
      xs.reserve(win.size());
      for (const auto& [w, v] : win) xs.push_back(v);
      sink2 += lower_median(xs);
    }
    const double sort_s = seconds_since(t0);

    if (sink != sink2) {
      std::printf("median MISMATCH: streaming %.6f vs sort %.6f\n", sink, sink2);
      return 1;
    }
    const double stream_mps = samples / stream_s / 1e6;
    const double sort_mps = samples / sort_s / 1e6;
    std::printf("median maintenance (window %.0f ms, %d samples)\n",
                window.to_millis(), samples);
    std::printf("  streaming dual-heap  %8.2f Msamples/s\n", stream_mps);
    std::printf("  sort-per-sample      %8.2f Msamples/s  (%.1fx slower)\n\n",
                sort_mps, stream_mps / sort_mps);
    counters["median_stream_msps"] = stream_mps;
    counters["median_sort_msps"] = sort_mps;
    counters["median_speedup"] = stream_mps / sort_mps;
  }

  // --- 2. scheduler churn: inline-callback d-ary heap vs seed engine ----------
  {
    const int ops = samples;
    std::uint64_t checksum_new = 7;
    std::uint64_t checksum_legacy = 7;

    sim::Scheduler fresh;
    auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t fired_new =
        churn_workload<sim::Scheduler, sim::EventId>(fresh, ops, &checksum_new);
    const double new_s = seconds_since(t0);

    LegacyScheduler legacy;
    t0 = std::chrono::steady_clock::now();
    const std::uint64_t fired_legacy =
        churn_workload<LegacyScheduler, LegacyScheduler::Id>(legacy, ops,
                                                             &checksum_legacy);
    const double legacy_s = seconds_since(t0);

    if (fired_new != fired_legacy || checksum_new != checksum_legacy) {
      std::printf("scheduler churn MISMATCH: new %llu/%llx vs legacy %llu/%llx\n",
                  static_cast<unsigned long long>(fired_new),
                  static_cast<unsigned long long>(checksum_new),
                  static_cast<unsigned long long>(fired_legacy),
                  static_cast<unsigned long long>(checksum_legacy));
      return 1;
    }
    const double new_mops = ops / new_s / 1e6;
    const double legacy_mops = ops / legacy_s / 1e6;
    std::printf("scheduler churn (%d schedule/cancel ops, %llu fired, FIFO order cross-checked)\n",
                ops, static_cast<unsigned long long>(fired_new));
    std::printf("  inline-callback 4-ary heap  %8.2f Mops/s\n", new_mops);
    std::printf("  seed engine (pq+function)   %8.2f Mops/s  (%.1fx slower)\n\n",
                legacy_mops, new_mops / legacy_mops);
    counters["sched_churn_mops"] = new_mops;
    counters["sched_churn_legacy_mops"] = legacy_mops;
    counters["sched_churn_speedup"] = new_mops / legacy_mops;
  }

  // --- 3. CSI measure(): ns/op and the zero-allocation assertion --------------
  {
    Rng rng(21);
    channel::LinkChannel::Config cfg;
    channel::LinkChannel link({0.0, 15.0}, {40.0, 0.0}, cfg, rng);
    const int iters = samples;
    double sink = 0.0;
    // Warm up (first calls may touch lazily-allocated libm/TLS state).
    for (int i = 0; i < 100; ++i) {
      sink += link.measure({i * 0.11, 0.0}, Time::us(i)).mean_snr_db;
    }
    const std::uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const channel::CsiMeasurement m =
          link.measure({-30.0 + i * 0.013, 0.4}, Time::us(i * 25));
      sink += m.mean_snr_db + m.subcarrier_snr_db[static_cast<std::size_t>(i) % 56];
    }
    const double measure_s = seconds_since(t0);
    const std::uint64_t allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
    const double ns_op = measure_s / iters * 1e9;
    std::printf("CSI measure() (%d calls, sink %.1f)\n", iters, sink);
    std::printf("  %8.1f ns/op, %llu heap allocations\n", ns_op,
                static_cast<unsigned long long>(allocs));
    if (allocs != 0) {
      std::printf("  FAIL: fixed-size CSI path must not allocate\n");
      return 1;
    }
    std::printf("  zero steady-state allocations: yes\n\n");
    counters["csi_measure_ns"] = ns_op;
    counters["csi_measure_allocs"] = static_cast<double>(allocs);
  }

  // --- 4. packet pool + cyclic queue churn -------------------------------------
  {
    net::PacketPool pool;
    ap::CyclicQueue q(&pool);
    std::uint64_t state = 3;
    const int ops = samples;
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t taken = 0;
    for (int i = 0; i < ops; ++i) {
      net::Packet p = net::make_packet();
      p.ip_id = static_cast<std::uint16_t>(state >> 40);
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      q.put(static_cast<std::uint16_t>(i & 0xfff), std::move(p));
      if ((state & 3) == 0) {
        if (auto got = q.take(static_cast<std::uint16_t>(i & 0xfff))) ++taken;
      }
    }
    q.clear();
    const double churn_s = seconds_since(t0);
    const double churn_mops = ops / churn_s / 1e6;
    std::printf("cyclic queue churn: %8.2f Mops/s (%llu takes, peak pool %zu pkts)\n\n",
                churn_mops, static_cast<unsigned long long>(taken),
                pool.peak_in_use());
    counters["queue_churn_mops"] = churn_mops;
    counters["pool_peak_packets"] = static_cast<double>(pool.peak_in_use());
  }

  // --- 5. end-to-end engine throughput -----------------------------------------
  {
    DriveConfig cfg;
    cfg.mph = 25.0;
    cfg.udp_rate_mbps = 20.0;
    cfg.seed = 11;
    cfg.record_perf = true;
    const DriveResult r = run_drive(cfg);
    const obs::Gauge* g = r.metrics ? r.metrics->find_gauge("sim.events_per_sec")
                                    : nullptr;
    const double eps = g != nullptr ? g->value() : 0.0;
    std::printf("end-to-end drive (25 mph, 20 Mb/s UDP): %.2f M events/s\n\n",
                eps / 1e6);
    counters["sim_events_per_sec"] = eps;
  }

  // --- 6. trial-pool scaling ---------------------------------------------------
  {
    const int trials = opts.smoke ? 2 : 8;
    const int jobs_n = opts.jobs > 1 ? opts.jobs : 4;
    auto make_batch = [&](TrialPool& pool) {
      DriveConfig cfg;
      cfg.mph = 25.0;
      cfg.udp_rate_mbps = 20.0;
      cfg.seed = 5;
      for (int i = 0; i < trials; ++i) {
        cfg.seed = cfg.seed * 7919 + 13;
        pool.submit(cfg);
      }
    };

    TrialPool seq(TrialPool::Options{.jobs = 1});
    make_batch(seq);
    const auto seq_results = seq.run();

    TrialPool par(TrialPool::Options{.jobs = jobs_n});
    make_batch(par);
    const auto par_results = par.run();

    // The determinism contract, checked here for free: identical results.
    double seq_sum = 0.0, par_sum = 0.0;
    for (const auto& r : seq_results) seq_sum += r.mean_mbps();
    for (const auto& r : par_results) par_sum += r.mean_mbps();
    if (seq_sum != par_sum) {
      std::printf("trial-pool MISMATCH: jobs=1 %.9f vs jobs=%d %.9f\n", seq_sum,
                  jobs_n, par_sum);
      return 1;
    }

    const double speedup = par.trials_per_sec() / seq.trials_per_sec();
    std::printf("trial-pool scaling (%d drive trials)\n", trials);
    std::printf("  --jobs 1   %8.3f trials/s\n", seq.trials_per_sec());
    std::printf("  --jobs %-3d %8.3f trials/s  (%.2fx)\n", jobs_n,
                par.trials_per_sec(), speedup);
    std::printf("  results bit-identical across job counts: yes\n");
    counters["trials_per_sec_jobs1"] = seq.trials_per_sec();
    counters["trials_per_sec_jobsN"] = par.trials_per_sec();
    counters["trial_pool_speedup"] = speedup;
    counters["jobs_n"] = jobs_n;
  }

  // --- 7. event-kind profiler: breakdown coverage + overhead bound -------------
  if (opts.profile) {
    DriveConfig cfg;
    cfg.mph = 25.0;
    cfg.udp_rate_mbps = 20.0;
    cfg.seed = 11;
    cfg.record_perf = true;
    const int reps = opts.smoke ? 2 : 3;

    const auto eps_of = [](const DriveResult& r) {
      const obs::Gauge* g =
          r.metrics ? r.metrics->find_gauge("sim.events_per_sec") : nullptr;
      return g != nullptr ? g->value() : 0.0;
    };

    // Best-of-N events/sec with the profiler detached, then attached. Best-of
    // (not mean) so one noisy rep on a loaded CI box cannot fake an overhead
    // regression; the bound below is on the best-vs-best ratio.
    double eps_off = 0.0;
    for (int i = 0; i < reps; ++i) {
      cfg.profile = false;
      eps_off = std::max(eps_off, eps_of(run_drive(cfg)));
    }
    double eps_on = 0.0;
    DriveResult prof;
    cfg.profile = true;
    for (int i = 0; i < reps; ++i) {
      DriveResult r = run_drive(cfg);
      const double eps = eps_of(r);
      if (eps > eps_on || !prof.metrics) {
        eps_on = eps;
        prof = std::move(r);
      }
    }

    std::printf("event-kind profiler (25 mph drive, best of %d runs)\n", reps);
    std::printf("  %-10s %12s %12s %7s %10s\n", "category", "events",
                "total ms", "share", "mean us");
    std::uint64_t total_events = 0;
    std::uint64_t total_ns = 0;
    int populated = 0;
    const obs::MetricsRegistry& m = *prof.metrics;
    for (int i = 0; i < sim::kNumEventCategories; ++i) {
      const auto cat = static_cast<sim::EventCategory>(i);
      const std::string base = "sim.profile." + std::string(sim::to_string(cat));
      const obs::Counter* ns = m.find_counter(base + "_ns");
      const obs::Histogram* us = m.find_histogram(base + "_us");
      if (ns != nullptr) total_ns += ns->value();
      if (us != nullptr) total_events += us->count();
      if (us != nullptr && us->count() > 0) ++populated;
    }
    for (int i = 0; i < sim::kNumEventCategories; ++i) {
      const auto cat = static_cast<sim::EventCategory>(i);
      const std::string base = "sim.profile." + std::string(sim::to_string(cat));
      const obs::Counter* ns = m.find_counter(base + "_ns");
      const obs::Histogram* us = m.find_histogram(base + "_us");
      const std::uint64_t cat_ns = ns != nullptr ? ns->value() : 0;
      const std::uint64_t cat_events = us != nullptr ? us->count() : 0;
      std::printf("  %-10s %12llu %12.2f %6.1f%% %10.2f\n",
                  std::string(sim::to_string(cat)).c_str(),
                  static_cast<unsigned long long>(cat_events),
                  cat_ns / 1e6,
                  total_ns > 0 ? 100.0 * static_cast<double>(cat_ns) /
                                     static_cast<double>(total_ns)
                               : 0.0,
                  cat_events > 0 ? static_cast<double>(cat_ns) /
                                       static_cast<double>(cat_events) / 1e3
                                 : 0.0);
    }

    const obs::Gauge* cov = m.find_gauge("sim.profile.wall_coverage");
    const double coverage = cov != nullptr ? cov->value() : 0.0;

    // The enforced overhead bound is measured directly: one loop iteration
    // below does exactly what the profiled step() adds per event (one
    // steady_clock read + EventProfiler::record), and the cost is compared
    // against the profiled drive's mean event duration. The end-to-end
    // events/sec off-vs-on delta is printed for context but NOT enforced —
    // on a busy single-core CI box its run-to-run variance (easily 10-20%)
    // swamps the few-percent signal and would make the gate flaky.
    sim::EventProfiler probe;
    const int cal_iters = opts.smoke ? 500'000 : 2'000'000;
    auto cal_t0 = std::chrono::steady_clock::now();
    auto cal_prev = cal_t0;
    for (int i = 0; i < cal_iters; ++i) {
      const auto now = std::chrono::steady_clock::now();
      probe.record(sim::EventCategory::kOther,
                   static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           now - cal_prev)
                           .count()));
      cal_prev = now;
    }
    const double cost_ns = seconds_since(cal_t0) / cal_iters * 1e9;
    const double mean_event_ns =
        total_events > 0
            ? static_cast<double>(total_ns) / static_cast<double>(total_events)
            : 0.0;
    const double overhead = mean_event_ns > 0.0 ? cost_ns / mean_event_ns : 1.0;

    std::printf("  breakdown: %llu events, %.2f ms attributed, %.1f%% of wall time\n",
                static_cast<unsigned long long>(total_events), total_ns / 1e6,
                coverage * 100.0);
    std::printf("  instrumentation: %.0f ns/event vs %.0f ns mean event (%.1f%% overhead)\n",
                cost_ns, mean_event_ns, overhead * 100.0);
    std::printf("  throughput (context only): %.2f M events/s off, %.2f M events/s on (%+.1f%%)\n",
                eps_off / 1e6, eps_on / 1e6,
                eps_off > 0.0 ? (eps_on / eps_off - 1.0) * 100.0 : 0.0);

    if (total_events == 0 || populated < 3) {
      std::printf("  FAIL: sim.profile.* categories are empty (%d populated)\n",
                  populated);
      return 1;
    }
    if (coverage < 0.90) {
      std::printf("  FAIL: breakdown covers %.1f%% of wall time (< 90%%)\n",
                  coverage * 100.0);
      return 1;
    }
    if (overhead > 0.05) {
      std::printf("  FAIL: profiler overhead %.1f%% exceeds the 5%% bound\n",
                  overhead * 100.0);
      return 1;
    }
    std::printf("  coverage >= 90%% and overhead < 5%%: yes\n\n");
    counters["profile_events"] = static_cast<double>(total_events);
    counters["profile_coverage"] = coverage;
    counters["profile_overhead_pct"] = overhead * 100.0;
    counters["profile_eps_off"] = eps_off;
    counters["profile_eps_on"] = eps_on;
    for (int i = 0; i < sim::kNumEventCategories; ++i) {
      const auto cat = static_cast<sim::EventCategory>(i);
      const std::string name = std::string(sim::to_string(cat));
      const obs::Counter* ns =
          m.find_counter("sim.profile." + name + "_ns");
      counters["profile_" + name + "_ms"] =
          (ns != nullptr ? ns->value() : 0) / 1e6;
    }
  }

  report("perf/engine", counters);
  return finish(argc, argv);
}
