// Extension: backhaul saturation (DESIGN.md §10, backhaul cost model).
//
// The paper's testbed hangs every AP off an effectively infinite wired
// backhaul; a transit-scale deployment strings hundreds of picocells along
// fiber or wireless links with real bandwidth limits, where the controller's
// fan-out (one copy per in-range AP per packet) is the first thing to
// saturate. This bench sweeps offered downlink load with the per-link
// bandwidth/queue model off (the seed engine's infinite pipe) and on at a
// finite rate with batching, and shows the property the model exists to
// expose: with an infinite pipe goodput tracks offered load, while a finite
// link caps goodput near the pipe rate and sheds the excess through the
// bounded queue (visible as queue drops and utilization pinned at ~1.0) —
// without ever violating a switching-protocol invariant.
//
// --smoke runs one infinite and one saturated point through a 2-worker
// TrialPool (registered as the bench-smoke-backhaul ctest target; under the
// asan-net preset this is the sanitizer pass over the refcounted fan-out,
// the link serializer and the batch machinery end to end).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

/// One saturation point: a 4-AP drive at `offered_mbps` downlink CBR with
/// the link model off (`link_rate_mbps` <= 0) or on at that rate.
DriveConfig saturation_config(double offered_mbps, double link_rate_mbps) {
  DriveConfig cfg;
  cfg.mph = 25.0;
  cfg.udp_rate_mbps = offered_mbps;
  cfg.seed = 17;
  cfg.collect_metrics = true;
  cfg.metrics_interval = Time::ms(250);
  scenario::GeometryConfig geo;
  geo.num_aps = 4;
  cfg.geometry = geo;
  if (link_rate_mbps > 0.0) {
    cfg.backhaul_link_rate_mbps = link_rate_mbps;
    cfg.backhaul_queue_bytes = std::size_t{64} * 1024;
    cfg.backhaul_batching = true;
  }
  return cfg;
}

double gauge_or_zero(const DriveResult& r, const char* name) {
  return r.metrics ? r.metrics->gauge(name).value() : 0.0;
}

void print_row(double offered, const char* link, const DriveResult& r) {
  std::printf("%10.1f %10s %10.2f %12.3f %12.0f %12zu\n", offered, link,
              r.mean_mbps(), gauge_or_zero(r, "backhaul.link_utilization"),
              gauge_or_zero(r, "backhaul.queue_drops"),
              r.invariant_violations);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  std::printf("=== Extension: backhaul saturation (4 APs, UDP downlink, "
              "25 mph) ===\n\n");
  std::printf("%10s %10s %10s %12s %12s %12s\n", "offered", "link",
              "goodput", "utilization", "queue_drops", "violations");

  constexpr double kLinkRate = 8.0;  // Mb/s per (controller, AP) link

  std::map<std::string, double> counters;
  if (opts.smoke) {
    TrialPool pool({.jobs = opts.jobs});
    pool.submit(saturation_config(8.0, 0.0));        // infinite pipe
    pool.submit(saturation_config(16.0, kLinkRate));  // 2x oversubscribed
    const std::vector<DriveResult> results = pool.run();
    print_row(8.0, "inf", results[0]);
    print_row(16.0, "8.0", results[1]);
    counters["goodput_inf_8"] = results[0].mean_mbps();
    counters["goodput_8mbps_16"] = results[1].mean_mbps();
    counters["queue_drops_8mbps_16"] =
        gauge_or_zero(results[1], "backhaul.queue_drops");
    counters["violations"] =
        static_cast<double>(results[0].invariant_violations +
                            results[1].invariant_violations);
  } else {
    const double offered[] = {4.0, 8.0, 16.0, 24.0};
    std::size_t violations = 0;
    for (const double load : offered) {
      const DriveResult inf = run_drive(saturation_config(load, 0.0));
      print_row(load, "inf", inf);
      const std::string tag = std::to_string(static_cast<int>(load));
      counters["goodput_inf_" + tag] = inf.mean_mbps();
      violations += inf.invariant_violations;
    }
    for (const double load : offered) {
      const DriveResult fin = run_drive(saturation_config(load, kLinkRate));
      print_row(load, "8.0", fin);
      const std::string tag = std::to_string(static_cast<int>(load));
      counters["goodput_8mbps_" + tag] = fin.mean_mbps();
      counters["utilization_8mbps_" + tag] =
          gauge_or_zero(fin, "backhaul.link_utilization");
      counters["queue_drops_8mbps_" + tag] =
          gauge_or_zero(fin, "backhaul.queue_drops");
      violations += fin.invariant_violations;
    }
    counters["violations"] = static_cast<double>(violations);
    std::printf(
        "\nexpectation: the infinite-pipe rows track offered load (the seed\n"
        "engine's behaviour), while the 8 Mb/s rows cap near the pipe: past\n"
        "saturation goodput stops growing, utilization pins near 1.0, and\n"
        "the bounded per-link queue sheds the excess as queue_drops — with\n"
        "zero switching-protocol invariant violations at every point.\n");
  }

  report("ext/backhaul_saturation", counters);
  return finish(argc, argv);
}
