// Table 4: video rebuffer ratio at different driving speeds (§5.4, online
// video case study).
//
// An HD (2.5 Mbit/s) stream is fetched over TCP from the local server and
// fed to a VLC-like player with a 1500 ms pre-buffer. Rebuffer ratio =
// stalled time / watch time while the client transits the array.
// Paper: WGTT 0 at every speed; baseline 0.69 at 5 mph easing to 0.54 at
// 20 mph (faster transit = less absolute time stalled).
#include <cstdio>
#include <memory>

#include "apps/video.h"
#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "scenario/wgtt_system.h"
#include "transport/tcp.h"

using namespace wgtt;

namespace {

double rebuffer_ratio(bool wgtt_system, double mph, std::uint64_t seed) {
  net::reset_packet_uids();
  const double lead = 15.0;
  const double span = lead + 52.5 + lead;
  const Time horizon = Time::seconds(span / mph_to_mps(mph));

  std::unique_ptr<scenario::WgttSystem> wgtt;
  std::unique_ptr<scenario::BaselineSystem> base;
  sim::Scheduler* sched = nullptr;
  mobility::LineDrive drive(-lead, 0.0, mph_to_mps(mph));
  if (wgtt_system) {
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    wgtt = std::make_unique<scenario::WgttSystem>(cfg);
    wgtt->add_client(&drive);
    wgtt->start();
    sched = &wgtt->sched();
  } else {
    scenario::BaselineSystemConfig cfg;
    cfg.geometry.seed = seed;
    base = std::make_unique<scenario::BaselineSystem>(cfg);
    base->add_client(&drive);
    base->start();
    sched = &base->sched();
  }

  transport::TcpSender::Config scfg;
  scfg.client = net::ClientId{0};
  transport::TcpSender sender(
      *sched,
      [&](net::Packet p) {
        if (wgtt) {
          wgtt->server_send(std::move(p));
        } else {
          base->server_send(std::move(p));
        }
      },
      scfg);
  transport::TcpReceiver receiver(
      *sched,
      [&](net::Packet p) {
        if (wgtt) {
          wgtt->client(0).send_uplink(std::move(p));
        } else {
          base->client(0).send_uplink(std::move(p));
        }
      },
      {.client = net::ClientId{0}});

  apps::VideoPlayer player(*sched, {.video_bitrate_mbps = 2.5,
                                    .prebuffer = Time::millis(1500.0)});
  receiver.on_delivered = [&](std::uint64_t bytes, Time) {
    player.on_bytes(bytes);
  };
  auto on_down = [&](const net::Packet& p) { receiver.on_data_packet(p); };
  auto on_up = [&](const net::Packet& p) { sender.on_ack_packet(p); };
  if (wgtt) {
    wgtt->client(0).on_downlink = on_down;
    wgtt->on_server_uplink = on_up;
  } else {
    base->client(0).on_downlink = on_down;
    base->on_server_uplink = on_up;
  }

  // The server streams the video as fast as TCP allows (FTP-style, as in
  // the paper's VLC-over-FTP setup).
  sender.set_unlimited(true);
  player.start();
  if (wgtt) {
    wgtt->run_until(horizon);
  } else {
    base->run_until(horizon);
  }
  player.stop();
  return player.report().rebuffer_ratio;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table 4: video rebuffer ratio vs speed ===\n\n");
  std::printf("%-20s", "Client speed (mph)");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) std::printf("%8.0f", mph);
  std::printf("\n%-20s", "WGTT");

  std::map<std::string, double> counters;
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    const double r = rebuffer_ratio(true, mph, 71);
    std::printf("%8.2f", r);
    counters["wgtt_" + std::to_string(static_cast<int>(mph))] = r;
  }
  std::printf("\n%-20s", "Enhanced 802.11r");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    const double r = rebuffer_ratio(false, mph, 71);
    std::printf("%8.2f", r);
    counters["base_" + std::to_string(static_cast<int>(mph))] = r;
  }
  std::printf("\n\npaper: WGTT 0 / 0 / 0 / 0; baseline 0.69 / 0.64 / 0.61 / 0.54\n");

  benchx::report("tbl4/video_rebuffer", counters);
  return benchx::finish(argc, argv);
}
