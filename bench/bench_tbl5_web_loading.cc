// Table 5: web page load time at different driving speeds (§5.4).
//
// The 2.1 MB eBay homepage is fetched over one TCP connection from the
// local server while the client transits the array. If the transfer has
// not finished by the time the client leaves coverage (or the connection
// dies), the result is the paper's "infinity".
// Paper: WGTT ~4.3-4.6 s flat; baseline 15.5 s / 18.2 s / inf / inf.
#include <cstdio>
#include <memory>

#include "apps/web.h"
#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "scenario/wgtt_system.h"
#include "transport/tcp.h"

using namespace wgtt;

namespace {

// Returns load time in seconds, or a negative value for "infinite".
double page_load_seconds(bool wgtt_system, double mph, std::uint64_t seed) {
  net::reset_packet_uids();
  const double lead = 15.0;
  const Time horizon = Time::seconds((lead + 52.5 + lead) / mph_to_mps(mph));

  std::unique_ptr<scenario::WgttSystem> wgtt;
  std::unique_ptr<scenario::BaselineSystem> base;
  sim::Scheduler* sched = nullptr;
  mobility::LineDrive drive(-lead, 0.0, mph_to_mps(mph));
  if (wgtt_system) {
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    wgtt = std::make_unique<scenario::WgttSystem>(cfg);
    wgtt->add_client(&drive);
    wgtt->start();
    sched = &wgtt->sched();
  } else {
    scenario::BaselineSystemConfig cfg;
    cfg.geometry.seed = seed;
    base = std::make_unique<scenario::BaselineSystem>(cfg);
    base->add_client(&drive);
    base->start();
    sched = &base->sched();
  }

  apps::WebPageLoad page;  // 2.1 MB
  transport::TcpSender sender(
      *sched,
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        if (wgtt) {
          wgtt->server_send(std::move(p));
        } else {
          base->server_send(std::move(p));
        }
      },
      {.client = net::ClientId{0}});
  transport::TcpReceiver receiver(
      *sched,
      [&](net::Packet p) {
        if (wgtt) {
          wgtt->client(0).send_uplink(std::move(p));
        } else {
          base->client(0).send_uplink(std::move(p));
        }
      },
      {.client = net::ClientId{0}});
  receiver.on_delivered = [&](std::uint64_t, Time now) {
    page.on_progress(receiver.bytes_delivered(), now);
  };
  auto on_down = [&](const net::Packet& p) { receiver.on_data_packet(p); };
  auto on_up = [&](const net::Packet& p) { sender.on_ack_packet(p); };
  if (wgtt) {
    wgtt->client(0).on_downlink = on_down;
    wgtt->on_server_uplink = on_up;
  } else {
    base->client(0).on_downlink = on_down;
    base->on_server_uplink = on_up;
  }

  page.begin(Time::zero());
  sender.send_bytes(page.page_bytes());
  if (wgtt) {
    wgtt->run_until(horizon);
  } else {
    base->run_until(horizon);
  }
  const auto t = page.load_time();
  return t ? t->to_seconds() : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table 5: web page (2.1 MB) load time vs speed ===\n\n");
  std::printf("%-20s", "Client speed (mph)");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) std::printf("%10.0f", mph);

  std::map<std::string, double> counters;
  std::printf("\n%-20s", "WGTT (s)");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    const double t = page_load_seconds(true, mph, 79);
    if (t >= 0) {
      std::printf("%10.2f", t);
    } else {
      std::printf("%10s", "inf");
    }
    counters["wgtt_s_" + std::to_string(static_cast<int>(mph))] = t;
  }
  std::printf("\n%-20s", "Enhanced 802.11r (s)");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    const double t = page_load_seconds(false, mph, 79);
    if (t >= 0) {
      std::printf("%10.2f", t);
    } else {
      std::printf("%10s", "inf");
    }
    counters["base_s_" + std::to_string(static_cast<int>(mph))] = t;
  }
  std::printf("\n\npaper: WGTT 4.44 / 4.64 / 4.34 / 4.47 s; baseline 15.49 /\n"
              "18.21 / inf / inf (the page never completes at speed).\n");

  benchx::report("tbl5/web_loading", counters);
  return benchx::finish(argc, argv);
}
