// Figure 18: uplink UDP packet loss of three mobile clients, with WGTT's
// multi-AP reception + controller de-duplication vs the baseline's single
// serving AP. The paper: with uplink diversity the loss rate stays below
// ~0.02 throughout; single-path loss spikes abruptly near cell edges.
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {
struct LossSummary {
  double mean = 0.0;
  double max = 0.0;
  double frac_above_5pct = 0.0;
};

LossSummary summarize(const DriveResult& r) {
  LossSummary s;
  int n = 0;
  int bad = 0;
  for (const auto& c : r.clients) {
    for (double loss : c.uplink_loss_windows) {
      s.mean += loss;
      s.max = std::max(s.max, loss);
      if (loss > 0.05) ++bad;
      ++n;
    }
  }
  if (n > 0) {
    s.mean /= n;
    s.frac_above_5pct = static_cast<double>(bad) / n;
  }
  return s;
}
}  // namespace

int main(int argc, char** argv) {
  DriveConfig cfg;
  cfg.workload = Workload::kUdpUp;
  cfg.udp_rate_mbps = 4.0;  // per client uplink
  cfg.mph = 15.0;
  cfg.num_clients = 3;
  cfg.seed = 43;

  cfg.system = System::kWgtt;
  const DriveResult w = run_drive(cfg);
  cfg.system = System::kBaseline;
  const DriveResult b = run_drive(cfg);

  const LossSummary lw = summarize(w);
  const LossSummary lb = summarize(b);

  std::printf("=== Figure 18: uplink loss, 3 clients at 15 mph ===\n\n");
  std::printf("%-24s %12s %12s %18s\n", "", "mean loss", "max loss",
              "windows > 5%% loss");
  std::printf("%-24s %12.4f %12.3f %17.1f%%\n", "WGTT (multi-AP uplink)",
              lw.mean, lw.max, lw.frac_above_5pct * 100.0);
  std::printf("%-24s %12.4f %12.3f %17.1f%%\n", "Enhanced 802.11r", lb.mean,
              lb.max, lb.frac_above_5pct * 100.0);
  std::printf("\nWGTT de-dup dropped %llu duplicate uplink copies of %llu\n",
              static_cast<unsigned long long>(w.uplink_dups_dropped),
              static_cast<unsigned long long>(w.uplink_packets));
  std::printf("paper: multi-uplink loss stays below 0.02; single-uplink loss\n"
              "changes abruptly (spikes near every cell edge).\n");

  report("fig18/uplink_loss",
         {{"wgtt_mean_loss", lw.mean},
          {"base_mean_loss", lb.mean},
          {"wgtt_max_loss", lw.max},
          {"base_max_loss", lb.max}});
  return finish(argc, argv);
}
