// Figure 13: TCP and UDP throughput vs client speed, WGTT vs Enhanced
// 802.11r.
//
// The headline result: WGTT's throughput is roughly flat from parked to
// 35 mph, while the baseline collapses with speed; the paper reports
// 2.4-4.7x TCP and 2.6-4.0x UDP gains over 5-25 mph.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {
double mean_over_seeds(DriveConfig cfg, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    cfg.seed = cfg.seed * 6364136223846793005ULL + 1442695040888963407ULL;
    total += run_drive(cfg).mean_mbps();
  }
  return total / n;
}
}  // namespace

int main(int argc, char** argv) {
  constexpr int kSeeds = 3;
  const std::vector<double> speeds{0.0, 5.0, 15.0, 25.0, 35.0};

  std::printf("=== Figure 13: throughput vs speed (mean of %d seeds) ===\n\n",
              kSeeds);
  std::printf("%8s %12s %12s %8s %12s %12s %8s\n", "speed", "WGTT tcp",
              "base tcp", "ratio", "WGTT udp", "base udp", "ratio");

  std::map<std::string, double> counters;
  for (double mph : speeds) {
    DriveConfig cfg;
    cfg.mph = mph;
    cfg.udp_rate_mbps = 40.0;
    cfg.seed = 101;

    cfg.workload = Workload::kTcpDown;
    cfg.system = System::kWgtt;
    const double wt = mean_over_seeds(cfg, kSeeds);
    cfg.system = System::kBaseline;
    const double bt = mean_over_seeds(cfg, kSeeds);

    cfg.workload = Workload::kUdpDown;
    cfg.system = System::kWgtt;
    const double wu = mean_over_seeds(cfg, kSeeds);
    cfg.system = System::kBaseline;
    const double bu = mean_over_seeds(cfg, kSeeds);

    const char* label = mph == 0.0 ? "static" : "mph";
    std::printf("%5.0f %-3s %10.2f %12.2f %7.1fx %12.2f %12.2f %7.1fx\n", mph,
                label, wt, bt, bt > 0 ? wt / bt : 0.0, wu, bu,
                bu > 0 ? wu / bu : 0.0);
    const auto tag = std::to_string(static_cast<int>(mph));
    counters["wgtt_tcp_" + tag] = wt;
    counters["base_tcp_" + tag] = bt;
    counters["wgtt_udp_" + tag] = wu;
    counters["base_udp_" + tag] = bu;
  }
  std::printf(
      "\npaper: WGTT ~6.6 (TCP) / 8.7 (UDP) Mbit/s roughly flat in speed;\n"
      "baseline decays 2.7->0.8 (TCP) and 3.3->1.9 (UDP) from 5 to 35 mph;\n"
      "gains 2.4-4.7x TCP, 2.6-4.0x UDP. Absolute values differ (simulated\n"
      "radio is cleaner than the 2.4 GHz testbed); the shape is the claim.\n");

  report("fig13/throughput_vs_speed", counters);
  return finish(argc, argv);
}
