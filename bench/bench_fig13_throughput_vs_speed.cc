// Figure 13: TCP and UDP throughput vs client speed, WGTT vs Enhanced
// 802.11r.
//
// The headline result: WGTT's throughput is roughly flat from parked to
// 35 mph, while the baseline collapses with speed; the paper reports
// 2.4-4.7x TCP and 2.6-4.0x UDP gains over 5-25 mph.
//
// All (speed, workload, system, seed) trials are independent, so they are
// submitted to one TrialPool up front and fanned across --jobs workers;
// per-group means are reduced in submission order, so the printed table is
// byte-identical at any job count.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const int kSeeds = opts.smoke ? 1 : 3;
  const std::vector<double> speeds =
      opts.smoke ? std::vector<double>{15.0}
                 : std::vector<double>{0.0, 5.0, 15.0, 25.0, 35.0};

  std::printf("=== Figure 13: throughput vs speed (mean of %d seeds) ===\n\n",
              kSeeds);
  std::printf("%8s %12s %12s %8s %12s %12s %8s\n", "speed", "WGTT tcp",
              "base tcp", "ratio", "WGTT udp", "base udp", "ratio");

  // Submit every trial; groups of kSeeds consecutive trials share one
  // (speed, workload, system) cell. The seed chain matches the bench's
  // pre-TrialPool sequential helper.
  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  auto submit_group = [&](DriveConfig cfg) {
    for (int i = 0; i < kSeeds; ++i) {
      cfg.seed = cfg.seed * 6364136223846793005ULL + 1442695040888963407ULL;
      pool.submit(cfg);
    }
  };
  for (double mph : speeds) {
    DriveConfig cfg;
    cfg.mph = mph;
    cfg.udp_rate_mbps = 40.0;
    cfg.seed = 101;
    for (const Workload wl : {Workload::kTcpDown, Workload::kUdpDown}) {
      for (const System sys : {System::kWgtt, System::kBaseline}) {
        cfg.workload = wl;
        cfg.system = sys;
        submit_group(cfg);
      }
    }
  }

  const std::vector<DriveResult> results = pool.run();
  auto group_mean = [&](std::size_t group) {
    double total = 0.0;
    for (int i = 0; i < kSeeds; ++i) {
      total += results[group * static_cast<std::size_t>(kSeeds) +
                       static_cast<std::size_t>(i)]
                   .mean_mbps();
    }
    return total / kSeeds;
  };

  std::map<std::string, double> counters;
  std::size_t group = 0;
  for (double mph : speeds) {
    const double wt = group_mean(group++);
    const double bt = group_mean(group++);
    const double wu = group_mean(group++);
    const double bu = group_mean(group++);

    const char* label = mph == 0.0 ? "static" : "mph";
    std::printf("%5.0f %-3s %10.2f %12.2f %7.1fx %12.2f %12.2f %7.1fx\n", mph,
                label, wt, bt, bt > 0 ? wt / bt : 0.0, wu, bu,
                bu > 0 ? wu / bu : 0.0);
    const auto tag = std::to_string(static_cast<int>(mph));
    counters["wgtt_tcp_" + tag] = wt;
    counters["base_tcp_" + tag] = bt;
    counters["wgtt_udp_" + tag] = wu;
    counters["base_udp_" + tag] = bu;
  }
  std::printf(
      "\npaper: WGTT ~6.6 (TCP) / 8.7 (UDP) Mbit/s roughly flat in speed;\n"
      "baseline decays 2.7->0.8 (TCP) and 3.3->1.9 (UDP) from 5 to 35 mph;\n"
      "gains 2.4-4.7x TCP, 2.6-4.0x UDP. Absolute values differ (simulated\n"
      "radio is cleaner than the 2.4 GHz testbed); the shape is the claim.\n");

  report("fig13/throughput_vs_speed", counters);
  return finish(argc, argv);
}
