// Ablation: AP crash rate (MTBF) vs failover behaviour.
//
// Each trial drives one UDP client past the eight-AP array at 15 mph while
// a deterministic crash schedule derived from the MTBF point knocks APs
// out from under it: the AP nearest the car's expected position goes down
// hard (queues wiped, radio dark, backhaul link cut) and restarts 1.2 s
// later. The controller's heartbeat machinery must detect each death
// within miss_threshold * heartbeat_interval, force the client onto a
// live neighbour with a replayed watermark, and readmit the AP after its
// backoff — all without tripping a switching-protocol invariant or
// delivering a duplicate past the client's uid filter.
//
// Shorter MTBF means more crashes per drive; goodput should degrade
// gracefully (each outage costs roughly the detection latency plus one
// switch), never collapse, and invariant violations must stay zero at
// every point. Each (MTBF, seed) pair is one independent TrialPool trial,
// fanned across --jobs workers.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"
#include "scenario/testbed.h"
#include "util/units.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

// Builds the deterministic crash schedule for one drive: every `mtbf`
// seconds starting at 1.5 s, crash the AP nearest the car's expected road
// position, restart it 1.2 s later. Each AP crashes at most once per
// drive (ApFaultScript holds one crash/restart pair), so at very short
// MTBF the schedule simply saturates the array.
std::vector<scenario::ApFaultScript> make_fault_schedule(double mtbf_s,
                                                         double mph,
                                                         double horizon_s) {
  std::vector<scenario::ApFaultScript> faults;
  if (mtbf_s <= 0.0) return faults;
  const scenario::GeometryConfig geo{};
  const double v = mph_to_mps(mph);
  std::vector<bool> used(static_cast<std::size_t>(geo.num_aps), false);
  for (double t = 1.5; t < horizon_s - 1.0; t += mtbf_s) {
    const double x = -15.0 + v * t;  // lead_in_m = 15 in DriveConfig
    int ap = static_cast<int>(x / geo.ap_spacing_m + 0.5);
    if (ap < 0) ap = 0;
    if (ap >= geo.num_aps) ap = geo.num_aps - 1;
    if (used[static_cast<std::size_t>(ap)]) continue;
    used[static_cast<std::size_t>(ap)] = true;
    scenario::ApFaultScript fs;
    fs.ap = ap;
    fs.crash_at = Time::seconds(t);
    fs.restart_at = Time::seconds(t + 1.2);
    faults.push_back(fs);
  }
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  // 0 = fault-free control column.
  const std::vector<double> mtbfs = opts.smoke
                                        ? std::vector<double>{0.0, 3.0}
                                        : std::vector<double>{0.0, 6.0, 3.0, 1.5};
  const int seeds = opts.smoke ? 1 : 3;

  const scenario::GeometryConfig geo{};
  const double span =
      15.0 + (geo.num_aps - 1) * geo.ap_spacing_m + 15.0;  // lead-in + array
  const double mph = 15.0;
  const double horizon_s = span / mph_to_mps(mph);

  std::printf("=== Ablation: AP crash MTBF vs failover ===\n\n");
  std::printf("%-28s", "Crash MTBF (s)");
  for (double m : mtbfs) {
    if (m <= 0.0)
      std::printf("%9s", "none");
    else
      std::printf("%9.1f", m);
  }
  std::printf("\n");

  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  for (double mtbf : mtbfs) {
    for (int s = 0; s < seeds; ++s) {
      DriveConfig cfg;
      cfg.mph = mph;
      cfg.udp_rate_mbps = 30.0;
      cfg.seed = 41 + static_cast<std::uint64_t>(s) * 13;
      cfg.ap_faults = make_fault_schedule(mtbf, mph, horizon_s);
      // A windowed median keeps the crashed AP's last samples in the argmax
      // until the heartbeat path evicts it — the paper's 10 ms default would
      // age the dead AP out of selection before liveness detection fires,
      // silently converting every forced failover into an ordinary switch.
      cfg.selection_window = Time::ms(200);
      pool.submit(cfg);
    }
  }
  const std::vector<DriveResult> results = pool.run();

  std::vector<double> mbps, dead, failovers, readmitted, dups, violations;
  for (std::size_t p = 0; p < mtbfs.size(); ++p) {
    double m = 0, d = 0, f = 0, r = 0, u = 0, v = 0;
    for (int s = 0; s < seeds; ++s) {
      const DriveResult& res = results[p * static_cast<std::size_t>(seeds) +
                                       static_cast<std::size_t>(s)];
      m += res.mean_mbps();
      d += static_cast<double>(res.aps_marked_dead);
      f += static_cast<double>(res.forced_failovers);
      r += static_cast<double>(res.aps_readmitted);
      u += static_cast<double>(res.downlink_dups_dropped);
      v += static_cast<double>(res.invariant_violations);
    }
    const double n = static_cast<double>(seeds);
    mbps.push_back(m / n);
    dead.push_back(d / n);
    failovers.push_back(f / n);
    readmitted.push_back(r / n);
    dups.push_back(u / n);
    violations.push_back(v);  // sum: any violation at any seed must show
  }

  std::printf("%-28s", "Goodput (Mb/s)");
  for (double x : mbps) std::printf("%9.1f", x);
  std::printf("\n%-28s", "APs marked dead");
  for (double x : dead) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Forced failovers");
  for (double x : failovers) std::printf("%9.1f", x);
  std::printf("\n%-28s", "APs readmitted");
  for (double x : readmitted) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Dup downlink dropped");
  for (double x : dups) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Invariant violations");
  for (double x : violations) std::printf("%9.0f", x);
  std::printf(
      "\n\nexpected: goodput degrades gracefully with shorter MTBF; every "
      "crash of a serving AP shows as a forced failover; zero invariant "
      "violations at every point\n");

  std::map<std::string, double> counters;
  for (std::size_t i = 0; i < mtbfs.size(); ++i) {
    const std::string tag =
        mtbfs[i] <= 0.0 ? "none"
                        : std::to_string(static_cast<int>(mtbfs[i] * 10.0));
    counters["mbps_mtbf" + tag] = mbps[i];
    counters["dead_mtbf" + tag] = dead[i];
    counters["failovers_mtbf" + tag] = failovers[i];
    counters["violations_mtbf" + tag] = violations[i];
  }
  report("abl/ap_failure", counters);
  return finish(argc, argv);
}
