// Statistical confidence check on the headline result.
//
// Every other bench pins seeds for reproducibility; this one sweeps seeds
// to show the headline claim (WGTT sustains throughput at driving speed
// where the baseline collapses) is not an artifact of a lucky seed. Prints
// mean +/- stddev over the sweep and the per-seed win/loss record.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"
#include "util/stats.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  constexpr int kSeeds = 8;
  constexpr double kMph = 25.0;

  std::printf("=== Seed sweep: UDP at %.0f mph, %d seeds ===\n\n", kMph,
              kSeeds);
  std::printf("%8s %12s %12s %8s\n", "seed", "WGTT Mb/s", "base Mb/s", "win");

  RunningStats wgtt_stats;
  RunningStats base_stats;
  int wins = 0;
  for (int s = 0; s < kSeeds; ++s) {
    DriveConfig cfg;
    cfg.mph = kMph;
    cfg.udp_rate_mbps = 30.0;
    cfg.seed = 1000 + static_cast<std::uint64_t>(s) * 7919;

    cfg.system = System::kWgtt;
    const double w = run_drive(cfg).mean_mbps();
    cfg.system = System::kBaseline;
    const double b = run_drive(cfg).mean_mbps();
    wgtt_stats.add(w);
    base_stats.add(b);
    if (w > b) ++wins;
    std::printf("%8llu %12.2f %12.2f %8s\n",
                static_cast<unsigned long long>(cfg.seed), w, b,
                w > b ? "WGTT" : "base");
  }

  std::printf("\nWGTT     : %.2f +/- %.2f Mbit/s\n", wgtt_stats.mean(),
              wgtt_stats.stddev());
  std::printf("baseline : %.2f +/- %.2f Mbit/s\n", base_stats.mean(),
              base_stats.stddev());
  std::printf("WGTT wins %d / %d seeds; mean gain %.1fx\n", wins, kSeeds,
              base_stats.mean() > 0 ? wgtt_stats.mean() / base_stats.mean()
                                    : 0.0);
  std::printf("\npaper: 2.6-4.0x UDP gain at driving speeds; the claim must\n"
              "(and does) hold across independent channel realizations.\n");

  report("stat/seed_sweep",
         {{"wgtt_mean", wgtt_stats.mean()},
          {"wgtt_std", wgtt_stats.stddev()},
          {"base_mean", base_stats.mean()},
          {"base_std", base_stats.stddev()},
          {"wins", static_cast<double>(wins)}});
  return finish(argc, argv);
}
