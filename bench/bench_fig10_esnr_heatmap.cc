// Figure 10: per-AP effective SNR heatmap over the road.
//
// Samples large-scale SNR along the road for each AP, prints a compact
// character heatmap per AP and the measured coverage/overlap extents. The
// paper's measured heatmaps show ~5 m cells overlapping by 6-10 m.
#include <cstdio>

#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/testbed.h"

using namespace wgtt;

namespace {
char shade(double snr_db) {
  if (snr_db >= 30.0) return '#';
  if (snr_db >= 20.0) return '+';
  if (snr_db >= 10.0) return '-';
  if (snr_db >= 4.0) return '.';
  return ' ';
}
}  // namespace

int main(int argc, char** argv) {
  scenario::GeometryConfig geo;
  geo.seed = 10;
  scenario::TestbedGeometry testbed(geo);
  mobility::StaticPosition dummy({0.0, 0.0});
  testbed.add_client(&dummy);

  std::printf("=== Figure 10: large-scale SNR heatmap per AP ===\n\n");
  std::printf("x along road, 1 char per metre, from -10 m to 65 m\n");
  std::printf("legend: '#' >=30 dB, '+' >=20, '-' >=10, '.' >=4, ' ' below\n\n");

  double total_coverage = 0.0;
  double total_overlap = 0.0;
  std::vector<std::pair<double, double>> usable;  // >=10 dB (data rates)
  std::vector<std::pair<double, double>> radio;   // >=4 dB (decodable)
  for (int ap = 0; ap < testbed.num_aps(); ++ap) {
    std::printf("AP%d |", ap);
    double ulo = 1e9, uhi = -1e9, rlo = 1e9, rhi = -1e9;
    for (int x = -10; x <= 65; ++x) {
      const double snr =
          testbed.large_scale_snr_db(ap, {static_cast<double>(x), 0.0});
      std::printf("%c", shade(snr));
      if (snr >= 10.0) {
        ulo = std::min(ulo, static_cast<double>(x));
        uhi = std::max(uhi, static_cast<double>(x));
      }
      if (snr >= 4.0) {
        rlo = std::min(rlo, static_cast<double>(x));
        rhi = std::max(rhi, static_cast<double>(x));
      }
    }
    std::printf("|\n");
    if (uhi >= ulo) {
      usable.emplace_back(ulo, uhi);
      total_coverage += uhi - ulo;
    }
    if (rhi >= rlo) radio.emplace_back(rlo, rhi);
  }

  // The paper's "radio coverage overlaps 6-10 m" is at decode level.
  for (std::size_t i = 1; i < radio.size(); ++i) {
    total_overlap += std::max(0.0, radio[i - 1].second - radio[i].first);
  }
  const double mean_cov = total_coverage / static_cast<double>(usable.size());
  const double mean_ovl =
      radio.size() > 1 ? total_overlap / static_cast<double>(radio.size() - 1)
                       : 0.0;
  std::printf("\nmean usable (>=10 dB) coverage per AP: %.1f m\n", mean_cov);
  std::printf("mean adjacent radio (>=4 dB) overlap:  %.1f m\n", mean_ovl);
  std::printf("paper: cells ~5 m at high quality, adjacent radio overlap 6-10 m\n");

  benchx::report("fig10/coverage",
                 {{"mean_coverage_m", mean_cov}, {"mean_overlap_m", mean_ovl}});
  return benchx::finish(argc, argv);
}
