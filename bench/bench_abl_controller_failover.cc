// Ablation: controller crash rate (MTBF) vs multi-domain failover.
//
// Each trial splits the eight-AP array into two ControllerDomains and
// drives one UDP client across the boundary at 10 mph while a
// deterministic crash schedule derived from the MTBF point kills
// controllers out from under it: the controller owning the stretch the
// car is on fails stop (its backhaul port goes dark with it) and comes
// back cold 1.5 s later. The surviving neighbour must detect the death
// via controller-to-controller heartbeats, adopt the dead domain's APs
// and clients from gossiped watermarks with a fresh epoch, and keep the
// drive alive; on restart the home controller re-learns ownership from
// gossip and the stretch migrates back measurement-driven.
//
// Shorter MTBF means more adoptions per drive; goodput should degrade
// gracefully (each outage costs roughly the heartbeat detection latency
// plus one epoch-jump bootstrap), never collapse, and invariant
// violations (dual ownership, 12-bit index regression, orphaned clients
// after settling) must stay zero at every point. Each (MTBF, seed) pair
// is one independent TrialPool trial, fanned across --jobs workers.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"
#include "scenario/testbed.h"
#include "util/units.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

constexpr int kDomains = 2;

// Builds the deterministic crash schedule for one drive: every `mtbf`
// seconds starting at 2.0 s, crash the controller owning the AP nearest
// the car's expected road position, restart it 1.5 s later. Entries are
// independent crash/restart pairs, so one domain can die several times
// per drive at short MTBF.
std::vector<scenario::ControllerFaultScript> make_fault_schedule(
    double mtbf_s, double mph, double horizon_s) {
  std::vector<scenario::ControllerFaultScript> faults;
  if (mtbf_s <= 0.0) return faults;
  const scenario::GeometryConfig geo{};
  const double v = mph_to_mps(mph);
  for (double t = 2.0; t < horizon_s - 2.0; t += mtbf_s) {
    const double x = -15.0 + v * t;  // lead_in_m = 15 in DriveConfig
    int ap = static_cast<int>(x / geo.ap_spacing_m + 0.5);
    if (ap < 0) ap = 0;
    if (ap >= geo.num_aps) ap = geo.num_aps - 1;
    scenario::ControllerFaultScript fs;
    fs.domain = ap * kDomains / geo.num_aps;  // even contiguous split
    fs.crash_at = Time::seconds(t);
    fs.restart_at = Time::seconds(t + 1.5);
    faults.push_back(fs);
  }
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  // 0 = crash-free control column (pure inter-domain handover cost).
  const std::vector<double> mtbfs = opts.smoke
                                        ? std::vector<double>{0.0, 5.0}
                                        : std::vector<double>{0.0, 10.0, 5.0};
  const int seeds = opts.smoke ? 1 : 3;

  const scenario::GeometryConfig geo{};
  const double span =
      15.0 + (geo.num_aps - 1) * geo.ap_spacing_m + 15.0;  // lead-in + array
  const double mph = 10.0;  // slow enough for >1 crash at MTBF 5 s
  const double horizon_s = span / mph_to_mps(mph);

  std::printf("=== Ablation: controller crash MTBF vs domain failover ===\n\n");
  std::printf("%-28s", "Crash MTBF (s)");
  for (double m : mtbfs) {
    if (m <= 0.0)
      std::printf("%9s", "none");
    else
      std::printf("%9.1f", m);
  }
  std::printf("\n");

  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  for (double mtbf : mtbfs) {
    for (int s = 0; s < seeds; ++s) {
      DriveConfig cfg;
      cfg.mph = mph;
      cfg.udp_rate_mbps = 30.0;
      cfg.seed = 73 + static_cast<std::uint64_t>(s) * 17;
      cfg.num_domains = kDomains;
      cfg.controller_faults = make_fault_schedule(mtbf, mph, horizon_s);
      pool.submit(cfg);
    }
  }
  const std::vector<DriveResult> results = pool.run();

  std::vector<double> mbps, handovers, retries, aborts, dead, adopted, yields,
      violations;
  for (std::size_t p = 0; p < mtbfs.size(); ++p) {
    double m = 0, h = 0, r = 0, a = 0, d = 0, c = 0, y = 0, v = 0;
    for (int s = 0; s < seeds; ++s) {
      const DriveResult& res = results[p * static_cast<std::size_t>(seeds) +
                                       static_cast<std::size_t>(s)];
      m += res.mean_mbps();
      h += static_cast<double>(res.handovers_completed);
      r += static_cast<double>(res.handover_retries);
      a += static_cast<double>(res.handover_aborts);
      d += static_cast<double>(res.controllers_marked_dead);
      c += static_cast<double>(res.clients_adopted);
      y += static_cast<double>(res.ownership_yields);
      v += static_cast<double>(res.invariant_violations);
    }
    const double n = static_cast<double>(seeds);
    mbps.push_back(m / n);
    handovers.push_back(h / n);
    retries.push_back(r / n);
    aborts.push_back(a / n);
    dead.push_back(d / n);
    adopted.push_back(c / n);
    yields.push_back(y / n);
    violations.push_back(v);  // sum: any violation at any seed must show
  }

  std::printf("%-28s", "Goodput (Mb/s)");
  for (double x : mbps) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Inter-domain handovers");
  for (double x : handovers) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Handshake retries");
  for (double x : retries) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Handshake aborts");
  for (double x : aborts) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Controllers marked dead");
  for (double x : dead) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Clients adopted");
  for (double x : adopted) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Ownership yields");
  for (double x : yields) std::printf("%9.1f", x);
  std::printf("\n%-28s", "Invariant violations");
  for (double x : violations) std::printf("%9.0f", x);
  std::printf(
      "\n\nexpected: the crash-free column pays only the boundary handover; "
      "goodput degrades gracefully with shorter MTBF (each crash costs "
      "heartbeat detection plus one adoption bootstrap); zero invariant "
      "violations at every point\n");

  std::map<std::string, double> counters;
  for (std::size_t i = 0; i < mtbfs.size(); ++i) {
    const std::string tag =
        mtbfs[i] <= 0.0 ? "none"
                        : std::to_string(static_cast<int>(mtbfs[i]));
    counters["mbps_mtbf" + tag] = mbps[i];
    counters["handovers_mtbf" + tag] = handovers[i];
    counters["dead_mtbf" + tag] = dead[i];
    counters["adopted_mtbf" + tag] = adopted[i];
    counters["violations_mtbf" + tag] = violations[i];
  }
  report("abl/controller_failover", counters);
  return finish(argc, argv);
}
