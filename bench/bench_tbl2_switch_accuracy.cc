// Table 2: switching accuracy — the fraction of time the handover
// algorithm has the client on the AP with the maximum instantaneous ESNR
// (ground truth sampled every 10 ms from the channel model, which is pure
// and therefore does not disturb the protocols).
//
// Paper: WGTT 90.12% (TCP) / 91.38% (UDP); Enhanced 802.11r 20.24% / 18.72%.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Table 2: switching accuracy at 15 mph ===\n\n");
  std::printf("%6s %12s %22s\n", "", "WGTT (%)", "Enhanced 802.11r (%)");

  std::map<std::string, double> counters;
  for (Workload wl : {Workload::kTcpDown, Workload::kUdpDown}) {
    DriveConfig cfg;
    cfg.workload = wl;
    cfg.mph = 15.0;
    cfg.udp_rate_mbps = 40.0;
    cfg.seed = 37;

    cfg.system = System::kWgtt;
    const double wgtt_acc = run_drive(cfg).mean_accuracy() * 100.0;
    cfg.system = System::kBaseline;
    const double base_acc = run_drive(cfg).mean_accuracy() * 100.0;

    const char* name = wl == Workload::kTcpDown ? "TCP" : "UDP";
    std::printf("%6s %12.2f %22.2f\n", name, wgtt_acc, base_acc);
    counters[std::string("wgtt_") + name] = wgtt_acc;
    counters[std::string("base_") + name] = base_acc;
  }
  std::printf("\npaper: WGTT 90.12 / 91.38; baseline 20.24 / 18.72\n");

  report("tbl2/switch_accuracy", counters);
  return finish(argc, argv);
}
