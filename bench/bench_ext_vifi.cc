// Extension: decomposing WGTT's uplink gains via a ViFi-style comparator
// (Balasubramanian et al., SIGCOMM 2008 — the closest prior system the
// paper's §6 discusses).
//
// Three systems on identical radio worlds, uplink UDP at 15 mph:
//   1. Enhanced 802.11r          — single serving AP end to end.
//   2. ViFi-lite                 — same handover, but every AP salvages
//                                  overheard uplink (router de-dups).
//   3. WGTT                      — salvaging + ms-scale downlink switching.
// Salvaging alone recovers part of the uplink loss; the rest needs WGTT's
// switching (a well-placed serving AP means the client transmits at high
// rates that distant APs cannot salvage).
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "bench/report.h"
#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "transport/udp.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

struct UplinkOutcome {
  double mbps = 0.0;
  double mean_loss = 0.0;
  std::uint64_t salvaged_dups = 0;
};

UplinkOutcome run_baseline_uplink(bool salvage, double mph, std::uint64_t seed) {
  net::reset_packet_uids();
  scenario::BaselineSystemConfig cfg;
  cfg.geometry.seed = seed;
  cfg.vifi_uplink_salvage = salvage;
  scenario::BaselineSystem sys(cfg);
  mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(mph));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  sys.on_server_uplink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) { sys.client(c).send_uplink(std::move(p)); },
      {.rate_mbps = 6.0, .client = net::ClientId{0}, .downlink = false});
  src.start();
  const Time t0 = drive.time_at_x(0.0);
  const Time t1 = drive.time_at_x(52.5);
  sys.run_until(t1);
  UplinkOutcome o;
  o.mbps = sink.throughput().average_mbps(t0, t1);
  o.mean_loss = std::max(0.0, 1.0 - o.mbps / 6.0);
  o.salvaged_dups = sys.router().stats().uplink_duplicates_dropped;
  return o;
}

UplinkOutcome run_wgtt_uplink(double mph, std::uint64_t seed) {
  DriveConfig cfg;
  cfg.workload = Workload::kUdpUp;
  cfg.udp_rate_mbps = 6.0;
  cfg.mph = mph;
  cfg.seed = seed;
  const DriveResult r = run_drive(cfg);
  UplinkOutcome o;
  o.mbps = r.mean_mbps();
  o.mean_loss = std::max(0.0, 1.0 - o.mbps / 6.0);
  o.salvaged_dups = r.uplink_dups_dropped;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: uplink-diversity decomposition (6 Mbit/s "
              "uplink, 15 mph) ===\n\n");
  std::printf("%-22s %12s %12s %16s\n", "system", "Mbit/s", "loss",
              "dups de-duped");

  const auto base = run_baseline_uplink(false, 15.0, 151);
  const auto vifi = run_baseline_uplink(true, 15.0, 151);
  const auto wgtt = run_wgtt_uplink(15.0, 151);

  auto row = [](const char* name, const UplinkOutcome& o) {
    std::printf("%-22s %12.2f %11.1f%% %16llu\n", name, o.mbps,
                o.mean_loss * 100.0,
                static_cast<unsigned long long>(o.salvaged_dups));
  };
  row("Enhanced 802.11r", base);
  row("ViFi-lite (salvage)", vifi);
  row("WGTT", wgtt);

  std::printf(
      "\nexpectation: salvaging recovers part of the baseline's uplink loss\n"
      "for free; WGTT recovers the rest because its switching keeps the\n"
      "client near a strong serving AP (the paper's §6 argument for going\n"
      "beyond ViFi).\n");

  benchx::report("ext/vifi",
                 {{"base_mbps", base.mbps},
                  {"vifi_mbps", vifi.mbps},
                  {"wgtt_mbps", wgtt.mbps}});
  return benchx::finish(argc, argv);
}
