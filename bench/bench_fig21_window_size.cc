// Figure 21: capacity loss vs the AP-selection window size W.
//
// W trades noise immunity against agility: a tiny window flips on single
// noisy ESNR samples; a large window reacts too slowly to ms-scale fades.
// The paper's emulation finds the minimum at W = 10 ms at every speed.
// Capacity loss rate here = 1 - delivered / best-observed-delivery across
// the sweep (the paper normalizes against channel capacity similarly).
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  // Wide sweep at 25 mph, where both failure modes of W are visible: a
  // tiny window flips on single noisy samples, a large one feeds the
  // selector data from metres back down the road.
  const std::vector<double> windows_ms{2.0,  5.0,   10.0,  20.0,
                                       50.0, 150.0, 400.0, 1000.0};
  constexpr int kSeeds = 4;

  std::printf("=== Figure 21: capacity loss vs selection window W ===\n\n");

  std::vector<double> mbps(windows_ms.size(), 0.0);
  for (std::size_t i = 0; i < windows_ms.size(); ++i) {
    DriveConfig cfg;
    cfg.mph = 25.0;
    cfg.udp_rate_mbps = 40.0;
    cfg.selection_window = Time::millis(windows_ms[i]);
    cfg.seed = 53;
    double total = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      cfg.seed = cfg.seed * 31 + 7;
      total += run_drive(cfg).mean_mbps();
    }
    mbps[i] = total / kSeeds;
  }
  const double best = *std::max_element(mbps.begin(), mbps.end());

  std::printf("%10s %12s %16s\n", "W (ms)", "Mbit/s", "capacity loss");
  std::map<std::string, double> counters;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < windows_ms.size(); ++i) {
    const double loss = 1.0 - mbps[i] / best;
    std::printf("%10.0f %12.2f %15.1f%%\n", windows_ms[i], mbps[i],
                loss * 100.0);
    counters["loss_w" + std::to_string(static_cast<int>(windows_ms[i]))] = loss;
    if (mbps[i] >= mbps[best_idx]) best_idx = i;
  }
  std::printf("\nbest window: %.0f ms (paper: 10 ms, stable across speeds)\n",
              windows_ms[best_idx]);

  counters["best_window_ms"] = windows_ms[best_idx];
  report("fig21/window_size", counters);
  return finish(argc, argv);
}
