// Table 3: link-layer (block) ACK collision rate at the client.
//
// Every WGTT AP that decodes an uplink frame replies with a block ACK; if
// two replies overlap in the air the client sees a collision. The paper
// measures this almost never happens (0.001-0.004%) thanks to the
// microsecond-level jitter the hardware adds before HT-immediate BAs.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Table 3: uplink BA collision rate at the client ===\n\n");
  std::printf("%-24s", "Data rate (Mbit/s)");
  for (double r : {70.0, 80.0, 90.0}) std::printf("%10.0f", r);
  std::printf("\n%-24s", "Ack collision rate (%)");

  std::map<std::string, double> counters;
  for (double rate : {70.0, 80.0, 90.0}) {
    DriveConfig cfg;
    cfg.workload = Workload::kUdpUp;  // uplink: all APs reply with BAs
    cfg.udp_rate_mbps = rate;
    cfg.mph = 15.0;
    cfg.seed = 59 + static_cast<std::uint64_t>(rate);
    const DriveResult r = run_drive(cfg);
    const double pct = r.ba_heard > 0 ? 100.0 * static_cast<double>(r.ba_collided) /
                                            static_cast<double>(r.ba_heard)
                                      : 0.0;
    std::printf("%10.3f", pct);
    counters["collision_pct_" + std::to_string(static_cast<int>(rate))] = pct;
  }
  std::printf("\n\npaper: 0.001%% at 70 Mbit/s up to 0.004%% at 90 Mbit/s —\n"
              "negligible, because BA responders jitter by microseconds and\n"
              "directional side lobes suppress most cross-AP overlaps.\n");

  report("tbl3/ack_collisions", counters);
  return finish(argc, argv);
}
