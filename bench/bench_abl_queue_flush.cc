// Ablation (§3 motivation): WGTT's cross-AP queue management vs a naive
// handover that abandons the backlog.
//
// The switching protocol's whole point is start(c, k): the new AP resumes
// from exactly the first packet the old AP did not send. The ablation
// ignores k and resumes from the newest packet, dropping the in-flight
// backlog — which for TCP means a burst of losses at every switch.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Ablation: cross-AP queue handoff (start(c,k)) ===\n\n");
  std::printf("%-26s %12s %12s\n", "", "TCP Mbit/s", "UDP Mbit/s");

  std::map<std::string, double> counters;
  for (bool naive : {false, true}) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.udp_rate_mbps = 30.0;
    cfg.seed = 83;
    cfg.start_from_newest = naive;

    cfg.workload = Workload::kTcpDown;
    const double tcp = run_drive(cfg).mean_mbps();
    cfg.workload = Workload::kUdpDown;
    const double udp = run_drive(cfg).mean_mbps();

    std::printf("%-26s %12.2f %12.2f\n",
                naive ? "naive (drop backlog)" : "WGTT (resume from k)", tcp,
                udp);
    const char* tag = naive ? "naive" : "wgtt";
    counters[std::string("tcp_") + tag] = tcp;
    counters[std::string("udp_") + tag] = udp;
  }
  std::printf("\nexpectation: TCP suffers most from the naive handover —\n"
              "every switch drops a window of in-flight data and forces\n"
              "retransmission/recovery.\n");

  report("abl/queue_flush", counters);
  return finish(argc, argv);
}
