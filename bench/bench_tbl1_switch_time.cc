// Table 1: running time of the switching protocol vs offered load.
//
// The stop -> (ioctl index query) -> start -> ack pipeline measured from
// the controller's stop to the new AP's ack, across 50-90 Mbit/s offered
// UDP. The paper reports ~17-21 ms mean with 3-5 ms standard deviation,
// flat in load (the protocol is control-plane bound, not data bound).
//
// Each offered rate is one independent TrialPool trial (--jobs fans them
// across workers); the stats reduce in rate order either way.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"
#include "util/stats.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv);
  const std::vector<double> rates =
      opts.smoke ? std::vector<double>{50.0}
                 : std::vector<double>{50.0, 60.0, 70.0, 80.0, 90.0};

  std::printf("=== Table 1: switching protocol running time ===\n\n");
  std::printf("%-26s", "Data rate (Mb/s)");
  for (double rate : rates) std::printf("%8.0f", rate);
  std::printf("\n");

  TrialPool pool(TrialPool::Options{.jobs = opts.jobs});
  for (double rate : rates) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.udp_rate_mbps = rate;
    cfg.seed = 17 + static_cast<std::uint64_t>(rate);
    pool.submit(cfg);
  }
  const std::vector<DriveResult> results = pool.run();

  std::vector<double> means;
  std::vector<double> stds;
  for (const DriveResult& r : results) {
    RunningStats s;
    for (double ms : r.switch_protocol_ms) s.add(ms);
    means.push_back(s.mean());
    stds.push_back(s.stddev());
  }
  std::printf("%-26s", "Mean execution time (ms)");
  for (double m : means) std::printf("%8.1f", m);
  std::printf("\n%-26s", "Standard deviation (ms)");
  for (double s : stds) std::printf("%8.1f", s);
  std::printf("\n\npaper: mean 17-21 ms, std 3-5 ms, insensitive to load\n");

  std::map<std::string, double> counters;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto tag = std::to_string(static_cast<int>(rates[i]));
    counters["mean_ms_" + tag] = means[i];
    counters["std_ms_" + tag] = stds[i];
  }
  report("tbl1/switch_protocol_time", counters);
  return finish(argc, argv);
}
