// Table 1: running time of the switching protocol vs offered load.
//
// The stop -> (ioctl index query) -> start -> ack pipeline measured from
// the controller's stop to the new AP's ack, across 50-90 Mbit/s offered
// UDP. The paper reports ~17-21 ms mean with 3-5 ms standard deviation,
// flat in load (the protocol is control-plane bound, not data bound).
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"
#include "util/stats.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Table 1: switching protocol running time ===\n\n");
  std::printf("%-26s", "Data rate (Mb/s)");
  for (double rate : {50.0, 60.0, 70.0, 80.0, 90.0}) std::printf("%8.0f", rate);
  std::printf("\n");

  std::vector<double> means;
  std::vector<double> stds;
  for (double rate : {50.0, 60.0, 70.0, 80.0, 90.0}) {
    DriveConfig cfg;
    cfg.mph = 15.0;
    cfg.udp_rate_mbps = rate;
    cfg.seed = 17 + static_cast<std::uint64_t>(rate);
    const DriveResult r = run_drive(cfg);
    RunningStats s;
    for (double ms : r.switch_protocol_ms) s.add(ms);
    means.push_back(s.mean());
    stds.push_back(s.stddev());
  }
  std::printf("%-26s", "Mean execution time (ms)");
  for (double m : means) std::printf("%8.1f", m);
  std::printf("\n%-26s", "Standard deviation (ms)");
  for (double s : stds) std::printf("%8.1f", s);
  std::printf("\n\npaper: mean 17-21 ms, std 3-5 ms, insensitive to load\n");

  std::map<std::string, double> counters;
  const std::array<int, 5> rates{50, 60, 70, 80, 90};
  for (std::size_t i = 0; i < rates.size(); ++i) {
    counters["mean_ms_" + std::to_string(rates[i])] = means[i];
    counters["std_ms_" + std::to_string(rates[i])] = stds[i];
  }
  report("tbl1/switch_protocol_time", counters);
  return finish(argc, argv);
}
