// Ablation (§3.2.3): uplink de-duplication load.
//
// Every AP that decodes an uplink frame tunnels a copy to the controller;
// the 48-bit hashset drops all but the first. This bench quantifies how
// many duplicates the fan-in actually produces (the work de-dup does), per
// speed — more overlap coverage means more copies per packet.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"

using namespace wgtt;
using namespace wgtt::benchx;

int main(int argc, char** argv) {
  std::printf("=== Ablation: uplink de-duplication load ===\n\n");
  std::printf("%8s %14s %14s %16s\n", "speed", "uplink pkts", "dups dropped",
              "copies per pkt");

  std::map<std::string, double> counters;
  for (double mph : {5.0, 15.0, 25.0}) {
    DriveConfig cfg;
    cfg.workload = Workload::kUdpUp;
    cfg.udp_rate_mbps = 10.0;
    cfg.mph = mph;
    cfg.seed = 97;
    const DriveResult r = run_drive(cfg);
    const double unique = static_cast<double>(r.uplink_packets) -
                          static_cast<double>(r.uplink_dups_dropped);
    const double copies =
        unique > 0 ? static_cast<double>(r.uplink_packets) / unique : 0.0;
    std::printf("%5.0f mph %14llu %14llu %16.2f\n", mph,
                static_cast<unsigned long long>(r.uplink_packets),
                static_cast<unsigned long long>(r.uplink_dups_dropped), copies);
    counters["copies_per_pkt_" + std::to_string(static_cast<int>(mph))] = copies;
  }
  std::printf("\nwithout de-dup every one of those copies would reach the\n"
              "server as a duplicate datagram (and, for TCP, as spurious\n"
              "dupacks triggering bogus fast-retransmits).\n");

  report("abl/dedup", counters);
  return finish(argc, argv);
}
