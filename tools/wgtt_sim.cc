// wgtt_sim: command-line front end to the simulator.
//
// Runs one configurable drive-by experiment and prints a summary; with
// --csv, writes the full event trace for external analysis (the same role
// the paper's tcpdump logs played).
//
// Usage:
//   wgtt_sim [--system wgtt|baseline] [--workload udp|tcp|uplink]
//            [--mph 15] [--rate 30] [--clients 1] [--aps 8] [--spacing 7.5]
//            [--seed 1] [--window-ms 10] [--hysteresis-ms 40]
//            [--channel-reuse 1] [--csv out.csv]
//            [--metrics out.json] [--metrics-interval-ms 100]
//            [--backhaul-rate MBPS] [--backhaul-batching]
//
// --backhaul-rate enables the per-link bandwidth/queue model (DESIGN.md
// §10) at the given Mb/s per (controller, AP) link; --backhaul-batching
// coalesces downlink fan-out into batched deliveries. Both off by default
// (the infinite-pipe engine).
//
// --metrics writes a JSON snapshot of the whole metrics registry after the
// run (schema wgtt.metrics.v1, see DESIGN.md §Observability): controller
// switch-phase histograms, cyclic-queue and hardware-queue depths,
// block-ACK forwarding, de-dup and TCP counters. --metrics-interval-ms sets
// the system-gauge sampling period (default 100 ms).
//
// Examples:
//   wgtt_sim --mph 25 --rate 40
//   wgtt_sim --system baseline --workload tcp --mph 15
//   wgtt_sim --channel-reuse 3 --csv trace.csv
//   wgtt_sim --mph 25 --metrics m.json
//   wgtt_sim --parallel-workers 4 --corridors 8 --rate 4
//
// --parallel-workers N runs the multi-corridor city scenario on the
// conservative parallel engine (DESIGN.md §11) with N worker threads: the
// city splits into RF-isolated road-segment domains (one per corridor, plus
// a server-side traffic hub), synchronized in lockstep windows of one wire
// latency. N is a wall-clock knob only — results are byte-identical for
// every N, which `ctest -R ParallelCity` proves 20 seeds deep. --corridors,
// --aps and --clients size the city (APs and clients are per corridor;
// --corridors is what changes the domain partition and hence results).
//
// --domains N splits the AP array across N controller domains (DESIGN.md
// §12): contiguous AP stretches, inter-controller handover at the
// boundaries, and crash failover. 1 (the default) is the single-controller
// engine, byte-identical to the seed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/harness.h"
#include "mobility/trajectory.h"
#include "obs/metrics.h"
#include "scenario/parallel_city.h"
#include "scenario/wgtt_system.h"
#include "trace/tracer.h"
#include "transport/tcp.h"
#include "transport/udp.h"

using namespace wgtt;
using namespace wgtt::benchx;

namespace {

struct Options {
  DriveConfig drive;
  std::string csv_path;
  int num_aps = 8;
  double spacing = 7.5;
  int parallel_workers = 0;  // 0 = sequential run_drive path
  int corridors = 4;
  bool ok = true;
  bool help = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: wgtt_sim [--system wgtt|baseline] [--workload "
               "udp|tcp|uplink]\n"
               "                [--mph N] [--rate MBPS] [--clients N] "
               "[--aps N] [--spacing M]\n"
               "                [--seed N] [--window-ms N] "
               "[--hysteresis-ms N]\n"
               "                [--channel-reuse N] [--csv FILE]\n"
               "                [--metrics FILE] [--metrics-interval-ms N]\n"
               "                [--backhaul-rate MBPS] [--backhaul-batching]\n"
               "                [--domains N]\n"
               "                [--parallel-workers N] [--corridors N]\n");
}

Options parse(int argc, char** argv) {
  Options o;
  int channel_reuse = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        o.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--system") {
      const char* v = need_value("--system");
      if (v == nullptr) break;
      if (std::strcmp(v, "wgtt") == 0) {
        o.drive.system = System::kWgtt;
      } else if (std::strcmp(v, "baseline") == 0) {
        o.drive.system = System::kBaseline;
      } else {
        std::fprintf(stderr, "unknown system '%s'\n", v);
        o.ok = false;
      }
    } else if (arg == "--workload") {
      const char* v = need_value("--workload");
      if (v == nullptr) break;
      if (std::strcmp(v, "udp") == 0) {
        o.drive.workload = Workload::kUdpDown;
      } else if (std::strcmp(v, "tcp") == 0) {
        o.drive.workload = Workload::kTcpDown;
      } else if (std::strcmp(v, "uplink") == 0) {
        o.drive.workload = Workload::kUdpUp;
      } else {
        std::fprintf(stderr, "unknown workload '%s'\n", v);
        o.ok = false;
      }
    } else if (arg == "--mph") {
      const char* v = need_value("--mph");
      if (v) o.drive.mph = std::atof(v);
    } else if (arg == "--rate") {
      const char* v = need_value("--rate");
      if (v) o.drive.udp_rate_mbps = std::atof(v);
    } else if (arg == "--clients") {
      const char* v = need_value("--clients");
      if (v) o.drive.num_clients = std::atoi(v);
    } else if (arg == "--aps") {
      const char* v = need_value("--aps");
      if (v) o.num_aps = std::atoi(v);
    } else if (arg == "--spacing") {
      const char* v = need_value("--spacing");
      if (v) o.spacing = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = need_value("--seed");
      if (v) o.drive.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--window-ms") {
      const char* v = need_value("--window-ms");
      if (v) o.drive.selection_window = Time::millis(std::atof(v));
    } else if (arg == "--hysteresis-ms") {
      const char* v = need_value("--hysteresis-ms");
      if (v) o.drive.hysteresis = Time::millis(std::atof(v));
    } else if (arg == "--channel-reuse") {
      const char* v = need_value("--channel-reuse");
      if (v) channel_reuse = std::atoi(v);
    } else if (arg == "--csv") {
      const char* v = need_value("--csv");
      if (v) o.csv_path = v;
    } else if (arg == "--metrics") {
      const char* v = need_value("--metrics");
      if (v) o.drive.metrics_path = v;
    } else if (arg == "--backhaul-rate") {
      const char* v = need_value("--backhaul-rate");
      if (v) {
        const double rate = std::atof(v);
        if (rate <= 0.0) {
          std::fprintf(stderr, "--backhaul-rate must be positive, got '%s'\n",
                       v);
          usage();
          o.ok = false;
        } else {
          o.drive.backhaul_link_rate_mbps = rate;
        }
      }
    } else if (arg == "--domains") {
      const char* v = need_value("--domains");
      if (v) {
        o.drive.num_domains = std::atoi(v);
        if (o.drive.num_domains < 1) {
          std::fprintf(stderr, "--domains must be >= 1, got '%s'\n", v);
          usage();
          o.ok = false;
        }
      }
    } else if (arg == "--parallel-workers") {
      const char* v = need_value("--parallel-workers");
      if (v) {
        o.parallel_workers = std::atoi(v);
        if (o.parallel_workers < 1) {
          std::fprintf(stderr, "--parallel-workers must be >= 1, got '%s'\n", v);
          usage();
          o.ok = false;
        }
      }
    } else if (arg == "--corridors") {
      const char* v = need_value("--corridors");
      if (v) {
        o.corridors = std::atoi(v);
        if (o.corridors < 1) {
          std::fprintf(stderr, "--corridors must be >= 1, got '%s'\n", v);
          usage();
          o.ok = false;
        }
      }
    } else if (arg == "--backhaul-batching") {
      o.drive.backhaul_batching = true;
    } else if (arg == "--metrics-interval-ms") {
      const char* v = need_value("--metrics-interval-ms");
      if (v) {
        const double ms = std::atof(v);
        if (ms <= 0.0) {
          std::fprintf(stderr,
                       "--metrics-interval-ms must be positive, got '%s'\n", v);
          usage();
          o.ok = false;
        } else {
          o.drive.metrics_interval = Time::millis(ms);
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      o.help = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      o.ok = false;
    }
  }
  if (o.num_aps != 8 || o.spacing != 7.5) {
    scenario::GeometryConfig geo;
    geo.num_aps = o.num_aps;
    geo.ap_spacing_m = o.spacing;
    o.drive.geometry = geo;
  }
  (void)channel_reuse;  // consumed below in run_with_trace for reuse > 1
  o.drive.accuracy_probe = Time::ms(10);
  return o;
}

/// Runs with a tracer attached (WGTT only; the trace hooks are WGTT's).
int run_with_trace(const Options& o, int channel_reuse) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry = o.drive.geometry.value_or(scenario::GeometryConfig{});
  cfg.geometry.seed = o.drive.seed;
  cfg.channel_reuse = channel_reuse;
  if (o.drive.backhaul_link_rate_mbps) {
    cfg.backhaul.link_rate_mbps = *o.drive.backhaul_link_rate_mbps;
  }
  cfg.backhaul.batching = o.drive.backhaul_batching;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-o.drive.lead_in_m, 0.0, mph_to_mps(o.drive.mph));
  const int c = sys.add_client(&drive);
  sys.start();

  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  trace::Tracer tracer;
  trace::attach(tracer, sys);

  obs::MetricsRegistry metrics;
  if (!o.drive.metrics_path.empty()) {
    sys.enable_metrics(metrics, o.drive.metrics_interval);
    transport::TcpSender::register_metrics(metrics);
  }

  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = o.drive.udp_rate_mbps, .client = net::ClientId{0}});
  src.start();

  const double last_ap_x = (cfg.geometry.num_aps - 1) * cfg.geometry.ap_spacing_m;
  const Time horizon = Time::seconds(
      (o.drive.lead_in_m * 2 + last_ap_x) / mph_to_mps(o.drive.mph));
  sys.run_until(horizon);

  std::printf("delivered %.2f Mbit/s over %.1f s; %zu switches; "
              "%zu trace events\n",
              sink.throughput().average_mbps(Time::zero(), horizon),
              horizon.to_seconds(),
              tracer.count(trace::EventKind::kSwitchCompleted),
              tracer.size());
  if (!o.csv_path.empty()) {
    std::ofstream out(o.csv_path);
    tracer.write_csv(out);
    std::printf("trace written to %s\n", o.csv_path.c_str());
  }
  if (!o.drive.metrics_path.empty()) {
    metrics.gauge("trace.events_dropped")
        .set(static_cast<double>(tracer.dropped()));
    std::ofstream out(o.drive.metrics_path);
    metrics.write_json(out);
    std::printf("metrics written to %s\n", o.drive.metrics_path.c_str());
  }
  return 0;
}

/// Runs the multi-corridor city on the parallel engine (--parallel-workers).
int run_parallel(const Options& o) {
  scenario::ParallelCityConfig cfg;
  cfg.corridors = o.corridors;
  cfg.aps_per_corridor = o.num_aps;
  cfg.clients_per_corridor = o.drive.num_clients;
  cfg.mph = o.drive.mph;
  cfg.udp_rate_mbps = o.drive.udp_rate_mbps;
  cfg.seed = o.drive.seed;
  cfg.uplink = o.drive.workload == Workload::kUdpUp;
  cfg.workers = o.parallel_workers;
  cfg.collect_metrics = !o.drive.metrics_path.empty();

  const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);

  std::printf("system      : wgtt (parallel engine, %d domains)\n", r.domains);
  std::printf("workload    : %s at %.1f Mbit/s per client\n",
              cfg.uplink ? "uplink udp" : "udp", cfg.udp_rate_mbps);
  std::printf("city        : %d corridors x %d APs, %d clients\n", cfg.corridors,
              cfg.aps_per_corridor, cfg.corridors * cfg.clients_per_corridor);
  std::printf("workers     : %d used (of %d requested)\n", r.workers_used,
              o.parallel_workers);
  std::printf("throughput  : %.2f Mbit/s mean per client\n", r.mean_mbps);
  std::printf("switches    : %llu\n", static_cast<unsigned long long>(r.switches));
  std::printf("engine      : %llu events, %llu rounds, %llu wire msgs, "
              "%.0f k events/s\n",
              static_cast<unsigned long long>(r.events_executed),
              static_cast<unsigned long long>(r.rounds),
              static_cast<unsigned long long>(r.messages),
              r.events_per_sec / 1e3);
  if (r.invariant_violations != 0 || r.lookahead_violations != 0) {
    std::printf("VIOLATIONS  : %zu invariant, %llu lookahead\n",
                r.invariant_violations,
                static_cast<unsigned long long>(r.lookahead_violations));
    return 1;
  }
  if (!o.drive.metrics_path.empty() && r.metrics) {
    std::ofstream out(o.drive.metrics_path);
    r.metrics->write_json(out);
    std::printf("metrics written to %s\n", o.drive.metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int channel_reuse = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--channel-reuse") == 0) {
      channel_reuse = std::atoi(argv[i + 1]);
    }
  }
  const Options o = parse(argc, argv);
  if (o.help) return 0;
  if (!o.ok) return 1;
  if (!o.drive.metrics_path.empty() && o.drive.system != System::kWgtt) {
    std::fprintf(stderr, "--metrics requires the wgtt system\n");
    return 1;
  }
  // Fail unwritable output paths up front, not after a multi-second drive.
  // Probe in append mode so an existing file's contents survive the probe
  // (the real writers truncate, but only once the run has succeeded).
  for (const std::string& path : {o.drive.metrics_path, o.csv_path}) {
    if (path.empty()) continue;
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "cannot write output file '%s'\n", path.c_str());
      usage();
      return 1;
    }
  }

  if (o.drive.num_domains > 1 &&
      (o.drive.system != System::kWgtt || o.parallel_workers > 0 ||
       !o.csv_path.empty() || channel_reuse > 1)) {
    std::fprintf(stderr,
                 "--domains requires the wgtt system on the sequential "
                 "engine (no --csv/--channel-reuse/--parallel-workers)\n");
    return 1;
  }

  if (o.parallel_workers > 0) {
    if (o.drive.system != System::kWgtt ||
        o.drive.workload == Workload::kTcpDown || !o.csv_path.empty() ||
        channel_reuse > 1) {
      std::fprintf(stderr,
                   "--parallel-workers supports the wgtt system with udp or "
                   "uplink workloads (no --csv/--channel-reuse)\n");
      return 1;
    }
    return run_parallel(o);
  }

  // CSV tracing needs the hook-based path (WGTT, UDP downlink).
  if (!o.csv_path.empty() || channel_reuse > 1) {
    if (o.drive.system != System::kWgtt ||
        o.drive.workload != Workload::kUdpDown || o.drive.num_clients != 1) {
      std::fprintf(stderr,
                   "--csv/--channel-reuse currently support the default "
                   "wgtt/udp/1-client mode\n");
      return 1;
    }
    return run_with_trace(o, channel_reuse);
  }

  const DriveResult r = run_drive(o.drive);
  std::printf("system      : %s\n",
              o.drive.system == System::kWgtt ? "wgtt" : "baseline");
  std::printf("workload    : %s at %.1f Mbit/s\n",
              o.drive.workload == Workload::kTcpDown  ? "tcp"
              : o.drive.workload == Workload::kUdpUp ? "uplink udp"
                                                      : "udp",
              o.drive.udp_rate_mbps);
  std::printf("speed       : %.0f mph over %d APs\n", o.drive.mph, o.num_aps);
  std::printf("throughput  : %.2f Mbit/s in-array (mean over %d clients)\n",
              r.mean_mbps(), static_cast<int>(r.clients.size()));
  std::printf("accuracy    : %.1f %% of 10 ms probes on the optimal AP\n",
              r.mean_accuracy() * 100.0);
  std::printf("switches    : %llu (%.2f per second)\n",
              static_cast<unsigned long long>(r.switches),
              static_cast<double>(r.switches) / r.duration_s);
  if (!r.switch_protocol_ms.empty()) {
    double mean = 0.0;
    for (double ms : r.switch_protocol_ms) mean += ms;
    mean /= static_cast<double>(r.switch_protocol_ms.size());
    std::printf("switch time : %.1f ms mean\n", mean);
  }
  if (o.drive.num_domains > 1) {
    std::printf("domains     : %d (%llu handovers, %llu retries, %llu "
                "aborts, %llu penalty-blocked)\n",
                o.drive.num_domains,
                static_cast<unsigned long long>(r.handovers_completed),
                static_cast<unsigned long long>(r.handover_retries),
                static_cast<unsigned long long>(r.handover_aborts),
                static_cast<unsigned long long>(r.penalty_blocked));
  }
  for (std::size_t i = 0; i < r.clients.size(); ++i) {
    std::printf("  client %zu : %.2f Mbit/s, tcp %s\n", i, r.clients[i].mbps,
                r.clients[i].tcp_alive ? "alive" : "DEAD");
  }
  if (!o.drive.metrics_path.empty()) {
    std::printf("metrics written to %s\n", o.drive.metrics_path.c_str());
  }
  return 0;
}
