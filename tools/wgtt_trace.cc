// wgtt-trace: converts simulator trace artifacts into Chrome trace_event
// JSON loadable in Perfetto / chrome://tracing.
//
// Inputs (both optional, at least one required):
//   --csv FILE        Tracer CSV export (the flight-recorder ring):
//                     when_s,kind,client,node,aux,value. '#' comment lines
//                     (the post-mortem tail header) are skipped.
//   --timeline FILE   TimelineRecorder JSONL (one sample object per line).
//
// Output (--out FILE, default stdout): {"traceEvents":[...]} with
//   - one process (pid) per client, named via "M" metadata events;
//   - "X" complete slices on the per-client "switching" track for every
//     kSwitchInitiated → kSwitchCompleted pair (the stop→start→ack span,
//     the same interval the WgttAp SpanTrackers decompose), with
//     from/to/protocol_ms in args;
//   - "C" counter tracks: serving AP (from switch completions), and from
//     the timeline goodput_mbps, top-candidate ESNR, cwnd/srtt.
//
// --require-spans exits nonzero when no switch span was produced — the CI
// smoke chain uses it to assert the fig17 run actually switched.
//
// Exit codes: 0 ok; 1 usage; 2 unreadable/malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct CsvEvent {
  double when_s = 0.0;
  std::string kind;
  int client = -1;
  int node = -1;
  int aux = -1;
  double value = 0.0;
};

struct TimelinePoint {
  double t_s = 0.0;
  int client = -1;
  int serving = -1;
  double goodput_mbps = 0.0;
  std::optional<double> esnr_db;  // best candidate
  std::optional<double> cwnd_segments;
  std::optional<double> srtt_ms;
};

struct Span {
  double start_s = 0.0;
  double end_s = 0.0;
  int client = -1;
  int from = -1;
  int to = -1;
  double protocol_ms = 0.0;
};

bool parse_csv(std::istream& in, std::vector<CsvEvent>& out,
               std::string& error) {
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "when_s,kind,client,node,aux,value") {
        error = "line " + std::to_string(lineno) +
                ": expected Tracer CSV header, got \"" + line + "\"";
        return false;
      }
      saw_header = true;
      continue;
    }
    CsvEvent e;
    std::istringstream row(line);
    std::string field;
    const bool ok = std::getline(row, field, ',') &&
                    (e.when_s = std::atof(field.c_str()), true) &&
                    std::getline(row, e.kind, ',') &&
                    std::getline(row, field, ',') &&
                    (e.client = std::atoi(field.c_str()), true) &&
                    std::getline(row, field, ',') &&
                    (e.node = std::atoi(field.c_str()), true) &&
                    std::getline(row, field, ',') &&
                    (e.aux = std::atoi(field.c_str()), true) &&
                    std::getline(row, field) &&
                    (e.value = std::atof(field.c_str()), true);
    if (!ok || e.kind.empty()) {
      error = "line " + std::to_string(lineno) + ": malformed row \"" + line +
              "\"";
      return false;
    }
    out.push_back(std::move(e));
  }
  if (!saw_header) {
    error = "no Tracer CSV header found";
    return false;
  }
  return true;
}

/// Value of `"key":<number>` in a JSONL line; nullopt when absent.
std::optional<double> find_number(const std::string& line,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::atof(line.c_str() + pos + needle.size());
}

bool parse_timeline(std::istream& in, std::vector<TimelinePoint>& out,
                    std::string& error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TimelinePoint p;
    const auto t = find_number(line, "t_s");
    const auto client = find_number(line, "client");
    if (!t || !client || line.front() != '{') {
      error = "timeline line " + std::to_string(lineno) +
              ": not a sample object";
      return false;
    }
    p.t_s = *t;
    p.client = static_cast<int>(*client);
    p.serving = static_cast<int>(find_number(line, "serving").value_or(-1.0));
    p.goodput_mbps = find_number(line, "goodput_mbps").value_or(0.0);
    // First esnr entry is the best candidate (the writer sorts best-first).
    const auto esnr_at = line.find("\"esnr\":[{");
    if (esnr_at != std::string::npos) {
      const auto db = find_number(line.substr(esnr_at), "db");
      if (db) p.esnr_db = *db;
    }
    if (const auto v = find_number(line, "cwnd_segments")) p.cwnd_segments = *v;
    if (const auto v = find_number(line, "srtt_ms")) p.srtt_ms = *v;
    out.push_back(p);
  }
  return true;
}

void emit_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--csv trace.csv] [--timeline timeline.jsonl]\n"
               "          [--out trace.json] [--require-spans]\n"
               "Converts Tracer CSV and/or TimelineRecorder JSONL into Chrome\n"
               "trace_event JSON (Perfetto / chrome://tracing).\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string timeline_path;
  std::string out_path;
  bool require_spans = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::optional<std::string> {
      if (arg == flag && i + 1 < argc) return std::string(argv[++i]);
      const std::string pre = std::string(flag) + "=";
      if (arg.rfind(pre, 0) == 0) return arg.substr(pre.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--require-spans") {
      require_spans = true;
    } else if (auto v = value("--csv")) {
      csv_path = *v;
    } else if (auto v = value("--timeline")) {
      timeline_path = *v;
    } else if (auto v = value("--out")) {
      out_path = *v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (csv_path.empty() && timeline_path.empty()) return usage(argv[0]);

  std::vector<CsvEvent> events;
  std::vector<TimelinePoint> points;
  std::string error;
  if (!csv_path.empty()) {
    std::ifstream in(csv_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 2;
    }
    if (!parse_csv(in, events, error)) {
      std::fprintf(stderr, "%s: %s\n", csv_path.c_str(), error.c_str());
      return 2;
    }
  }
  if (!timeline_path.empty()) {
    std::ifstream in(timeline_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", timeline_path.c_str());
      return 2;
    }
    if (!parse_timeline(in, points, error)) {
      std::fprintf(stderr, "%s: %s\n", timeline_path.c_str(), error.c_str());
      return 2;
    }
  }

  // Pair switch initiations with their completions, per client. An
  // initiation superseded by a newer one before completing (failover,
  // re-bootstrap) is closed at the superseding initiation so no span leaks
  // to infinity.
  std::vector<Span> spans;
  std::vector<std::optional<std::size_t>> open;  // client -> index into spans
  int max_client = -1;
  for (const auto& e : events) max_client = std::max(max_client, e.client);
  for (const auto& p : points) max_client = std::max(max_client, p.client);
  open.assign(static_cast<std::size_t>(max_client + 1), std::nullopt);
  for (const auto& e : events) {
    if (e.client < 0 || e.client > max_client) continue;
    const auto c = static_cast<std::size_t>(e.client);
    if (e.kind == "switch_initiated") {
      if (open[c]) spans[*open[c]].end_s = e.when_s;
      open[c] = spans.size();
      spans.push_back({e.when_s, e.when_s, e.client, e.node, e.aux, 0.0});
    } else if (e.kind == "switch_completed") {
      if (!open[c]) continue;  // completion whose initiation fell off the ring
      Span& s = spans[*open[c]];
      s.end_s = e.when_s;
      s.protocol_ms = e.value;
      open[c] = std::nullopt;
    }
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 2;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  for (int c = 0; c <= max_client; ++c) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << c
        << ",\"name\":\"process_name\",\"args\":{\"name\":\"client " << c
        << "\"}}";
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << c
        << ",\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":"
           "\"switching\"}}";
  }

  char buf[64];
  for (const auto& s : spans) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":" << s.client << ",\"tid\":1,\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f", s.start_s * 1e6);
    out << buf << ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f", (s.end_s - s.start_s) * 1e6);
    out << buf << ",\"name\":";
    std::string name = "switch ";
    name += (s.from >= 0 ? "ap" + std::to_string(s.from) : "(none)");
    name += "→ap" + std::to_string(s.to);
    emit_json_string(out, name);
    out << ",\"args\":{\"from\":" << s.from << ",\"to\":" << s.to
        << ",\"protocol_ms\":" << s.protocol_ms << "}}";
  }

  for (const auto& e : events) {
    if (e.kind != "switch_completed" || e.client < 0) continue;
    sep();
    std::snprintf(buf, sizeof(buf), "%.3f", e.when_s * 1e6);
    out << "{\"ph\":\"C\",\"pid\":" << e.client << ",\"ts\":" << buf
        << ",\"name\":\"serving_ap\",\"args\":{\"ap\":" << e.node << "}}";
  }

  for (const auto& p : points) {
    sep();
    std::snprintf(buf, sizeof(buf), "%.3f", p.t_s * 1e6);
    out << "{\"ph\":\"C\",\"pid\":" << p.client << ",\"ts\":" << buf
        << ",\"name\":\"goodput_mbps\",\"args\":{\"mbps\":" << p.goodput_mbps
        << "}}";
    if (p.esnr_db) {
      sep();
      out << "{\"ph\":\"C\",\"pid\":" << p.client << ",\"ts\":" << buf
          << ",\"name\":\"best_esnr_db\",\"args\":{\"db\":" << *p.esnr_db
          << "}}";
    }
    if (p.cwnd_segments) {
      sep();
      out << "{\"ph\":\"C\",\"pid\":" << p.client << ",\"ts\":" << buf
          << ",\"name\":\"tcp\",\"args\":{\"cwnd_segments\":"
          << *p.cwnd_segments << ",\"srtt_ms\":" << p.srtt_ms.value_or(0.0)
          << "}}";
    }
  }

  out << "\n]}\n";
  out.flush();

  std::fprintf(stderr, "wgtt-trace: %zu csv events, %zu timeline samples, %zu switch spans\n",
               events.size(), points.size(), spans.size());
  if (require_spans && spans.empty()) {
    std::fprintf(stderr, "wgtt-trace: --require-spans: no switch spans found\n");
    return 2;
  }
  return 0;
}
