# Smoke chain for the trace exporter: run bench_fig17_multi_client --smoke
# with trace export enabled, then convert the artifacts with wgtt-trace and
# fail unless per-client switch spans came out of the conversion.
# Invoked by the trace-export-smoke CTest target:
#   cmake -DBENCH=<bench> -DTRACE_TOOL=<wgtt-trace> -DWORK_DIR=<dir>
#         -P trace_smoke.cmake
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${BENCH}" --smoke --trace-dir "${WORK_DIR}"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench run failed with ${bench_rc}")
endif()

foreach(artifact fig17_trace.csv fig17_timeline.jsonl)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "bench did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${TRACE_TOOL}"
          --csv "${WORK_DIR}/fig17_trace.csv"
          --timeline "${WORK_DIR}/fig17_timeline.jsonl"
          --out "${WORK_DIR}/fig17_trace.json"
          --require-spans
  RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR "wgtt-trace conversion failed with ${trace_rc}")
endif()

# The output must at least be a traceEvents JSON document.
file(READ "${WORK_DIR}/fig17_trace.json" trace_json LIMIT 64)
if(NOT trace_json MATCHES "traceEvents")
  message(FATAL_ERROR "fig17_trace.json is not Chrome trace_event JSON")
endif()
