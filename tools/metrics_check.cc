// metrics_check: end-to-end validation of the wgtt-sim --metrics snapshot.
//
// Runs the simulator binary (argv[1]) for a short drive with --metrics,
// parses the emitted JSON with a self-contained parser (no Python, no
// third-party deps — this is the CI gate for the metrics schema), and
// checks that the snapshot carries every key the paper-reproduction
// tooling relies on, with internally consistent values:
//
//   - schema tag wgtt.metrics.v1
//   - controller switch-phase histogram, count == switches completed
//   - cyclic-queue, A-MPDU, block-ACK-forward and de-dup instruments
//   - tcp.* keys present even for a UDP workload (pre-registration)
//
// With a key manifest (argv[3], normally tools/metrics_keys.txt) it also
// diffs the snapshot's full key set against the committed list: keys that
// DISAPPEARED from the snapshot are printed as "- missing: ..." lines and
// fail the check (a renamed or dropped instrument silently breaks every
// dashboard and tooling query that reads it); keys that are NEW are printed
// as "+ new: ..." informational lines — add them to the manifest when the
// instrument is intentional.
//
// Exit 0 on success; nonzero with a message naming the first failure.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON ------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_literal("null") &&
                         (out.kind = JsonValue::Kind::kNull, true);
    return parse_number(out);
  }

  bool parse_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (parse_literal("true")) {
      out.boolean = true;
      return true;
    }
    if (parse_literal("false")) {
      out.boolean = false;
      return true;
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            pos_ += 4;  // keys we check are ASCII; skip the escape
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- checks ------------------------------------------------------------------

int fail(const std::string& what) {
  std::fprintf(stderr, "metrics_check FAILED: %s\n", what.c_str());
  return 1;
}

const JsonValue* require_key(const JsonValue& section, const char* name,
                             const char* kind, std::string& err) {
  const JsonValue* v = section.find(name);
  if (v == nullptr) err = std::string("missing ") + kind + " '" + name + "'";
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: metrics_check <path-to-wgtt-sim> [output-dir]\n");
    return 2;
  }
  // Scratch files go to the caller-provided directory (the build tree, when
  // run under ctest) so the checker never litters the source checkout.
  const std::string out_dir = argc >= 3 ? std::string(argv[2]) + "/" : "";
  const std::string out_path = out_dir + "metrics_check_out.json";
  std::remove(out_path.c_str());

  // The backhaul model runs with ample headroom (200 Mb/s links, batching
  // on) so the gated backhaul.*/net.pool_refs gauges appear in the snapshot
  // and the manifest can pin them, without perturbing the drive's switching
  // behaviour. --domains 2 likewise brings the gated domain.* /
  // controller.handover_* instruments into the snapshot so the manifest
  // covers the multi-controller layer too.
  const std::string cmd = std::string("\"") + argv[1] +
                          "\" --mph 25 --aps 4 --rate 10 --seed 3 "
                          "--backhaul-rate 200 --backhaul-batching "
                          "--domains 2 --metrics " +
                          out_path + " > " + out_dir +
                          "metrics_check_stdout.txt";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) return fail("simulator run exited nonzero");

  std::ifstream in(out_path);
  if (!in) return fail("simulator did not write " + out_path);
  std::stringstream buf;
  buf << in.rdbuf();

  JsonValue root;
  if (!JsonParser(buf.str()).parse(root)) {
    return fail("snapshot is not valid JSON");
  }
  if (root.kind != JsonValue::Kind::kObject) return fail("root is not an object");

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->str != "wgtt.metrics.v1") {
    return fail("schema tag missing or not wgtt.metrics.v1");
  }

  const JsonValue* counters = root.find("counters");
  const JsonValue* gauges = root.find("gauges");
  const JsonValue* histograms = root.find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr) {
    return fail("missing counters/gauges/histograms section");
  }

  std::string err;
  const char* required_counters[] = {
      "controller.switches_initiated", "controller.switches_completed",
      "controller.stop_retransmissions", "controller.downlink_packets",
      "controller.dedup_hits", "controller.dedup_misses",
      "ap.downlink_received", "ap.stale_dropped", "ap.cyclic_overwrites",
      "ap.ba_forwarded", "mac.ba_injected", "mac.retransmissions",
      "mac.ampdus_sent", "client_mac.ba_heard", "tcp.segments_sent",
      "tcp.retransmissions", "tcp.rtos",
  };
  for (const char* name : required_counters) {
    if (require_key(*counters, name, "counter", err) == nullptr) return fail(err);
  }
  const char* required_gauges[] = {
      "controller.dedup_table_size", "system.cyclic_backlog_total",
      "system.hw_queue_depth_total", "tcp.cwnd_segments",
  };
  for (const char* name : required_gauges) {
    if (require_key(*gauges, name, "gauge", err) == nullptr) return fail(err);
  }
  const char* required_histograms[] = {
      "controller.switch_time_ms", "ap.stop_to_start_ms", "ap.start_to_ack_ms",
      "ap.cyclic_occupancy", "mac.ampdu_mpdus", "mac.hw_queue_depth",
      "tcp.rtt_ms", "system.cyclic_backlog_depth",
  };
  for (const char* name : required_histograms) {
    if (require_key(*histograms, name, "histogram", err) == nullptr) {
      return fail(err);
    }
  }

  // Cross-checks: the drive must actually have switched, and the
  // switch-time histogram must account for every completed switch.
  const double completed = counters->find("controller.switches_completed")->number;
  if (completed < 1.0) return fail("no switches completed in the drive");
  const JsonValue* st = histograms->find("controller.switch_time_ms");
  const JsonValue* st_count = st->find("count");
  if (st_count == nullptr) return fail("switch_time_ms has no count");
  if (st_count->number != completed) {
    return fail("switch_time_ms count (" + std::to_string(st_count->number) +
                ") != switches_completed (" + std::to_string(completed) + ")");
  }
  const JsonValue* delivered = counters->find("controller.downlink_packets");
  if (delivered->number < 1.0) return fail("no downlink packets flowed");

  // --- manifest diff: catch keys that disappeared from the snapshot ----------
  if (argc >= 4) {
    std::ifstream manifest(argv[3]);
    if (!manifest) return fail(std::string("cannot read manifest ") + argv[3]);

    // "<kind> <name>" pairs present in the snapshot.
    std::map<std::string, const JsonValue*> sections = {
        {"counter", counters}, {"gauge", gauges}, {"histogram", histograms}};
    std::vector<std::string> missing;
    std::map<std::string, std::map<std::string, bool>> listed;
    std::string line;
    int lineno = 0;
    while (std::getline(manifest, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const std::size_t sp = line.find(' ');
      const std::string kind = line.substr(0, sp);
      auto sec = sections.find(kind);
      if (sp == std::string::npos || sec == sections.end()) {
        return fail("manifest line " + std::to_string(lineno) +
                    " is not '<counter|gauge|histogram> <name>': " + line);
      }
      const std::string name = line.substr(sp + 1);
      listed[kind][name] = true;
      if (sec->second->find(name) == nullptr) {
        missing.push_back("- missing: " + kind + " " + name);
      }
    }
    // New keys are informational: print them so intentional additions get
    // promoted into the manifest, but do not fail.
    for (const auto& [kind, section] : sections) {
      for (const auto& [name, value] : section->object) {
        if (!listed[kind].contains(name)) {
          std::printf("+ new: %s %s (add to %s)\n", kind.c_str(), name.c_str(),
                      argv[3]);
        }
      }
    }
    if (!missing.empty()) {
      for (const std::string& m : missing) {
        std::fprintf(stderr, "%s\n", m.c_str());
      }
      return fail(std::to_string(missing.size()) +
                  " manifest key(s) disappeared from the snapshot");
    }
  }

  std::printf("metrics_check OK: %zu counters, %zu gauges, %zu histograms; "
              "%g switches\n",
              counters->object.size(), gauges->object.size(),
              histograms->object.size(), completed);
  return 0;
}
